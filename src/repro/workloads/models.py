"""Model zoo: configurations of every model the paper evaluates.

Dense transformers (Llama-2 30B, Llama-3 70B/405B, GPT-175B), MoE transformers
(GShard-137B, DeepSeek-V3 671B, Qwen3-Next-80B-A3B) and the "emerging" architectures of
Fig. 19 (generative recommender, Stable Diffusion 3.5 Large, Mamba-2.8B).

Only shape information is needed by a cost-model study; parameter counts are derived from
the shapes so that memory accounting stays self-consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.units import FP16_BYTES


class ModelFamily(enum.Enum):
    """Architecture family; selects which operator-graph builder applies."""

    TRANSFORMER = "transformer"
    MOE_TRANSFORMER = "moe_transformer"
    MAMBA = "mamba"
    DIFFUSION = "diffusion"
    RECOMMENDER = "recommender"


@dataclass(frozen=True)
class ModelConfig:
    """Shape description of a model.

    ``ffn_hidden`` is the MLP intermediate size.  ``gated_mlp`` marks SwiGLU-style MLPs
    (three projection matrices instead of two).  For MoE models ``num_experts`` /
    ``experts_per_token`` describe the routed expert MLPs; the dense attention path is
    unchanged.
    """

    name: str
    family: ModelFamily
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    ffn_hidden: int
    vocab_size: int = 32000
    default_seq_len: int = 4096
    gated_mlp: bool = True
    num_experts: int = 0
    experts_per_token: int = 0
    shared_experts: int = 0
    state_dim: int = 0          # Mamba SSM state dimension
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0:
            raise ValueError("model must have positive depth and width")
        if self.num_heads <= 0 or self.num_kv_heads <= 0:
            raise ValueError("model must have positive head counts")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden size must be divisible by the number of heads")
        if self.family is ModelFamily.MOE_TRANSFORMER and self.num_experts <= 0:
            raise ValueError("MoE models must declare num_experts")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden(self) -> int:
        return self.num_kv_heads * self.head_dim

    @property
    def is_moe(self) -> bool:
        return self.family is ModelFamily.MOE_TRANSFORMER

    # ------------------------------------------------------------------ parameters
    @property
    def attention_params_per_layer(self) -> int:
        h, kv = self.hidden_size, self.kv_hidden
        return h * h + 2 * h * kv + h * h  # Q, K, V, output projection

    @property
    def mlp_params_per_expert(self) -> int:
        mats = 3 if self.gated_mlp else 2
        return mats * self.hidden_size * self.ffn_hidden

    @property
    def mlp_params_per_layer(self) -> int:
        if self.is_moe:
            routed = self.num_experts * self.mlp_params_per_expert
            shared = self.shared_experts * self.mlp_params_per_expert
            router = self.hidden_size * self.num_experts
            return routed + shared + router
        return self.mlp_params_per_expert

    @property
    def params_per_layer(self) -> int:
        norms = 2 * self.hidden_size
        if self.family is ModelFamily.MAMBA:
            # in/out projections + SSM parameters (A, B, C, dt) per layer
            ssm = self.hidden_size * (4 * self.state_dim + 2) + 2 * self.hidden_size * self.ffn_hidden
            return ssm + norms
        return self.attention_params_per_layer + self.mlp_params_per_layer + norms

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_size

    @property
    def num_parameters(self) -> int:
        """Total parameter count (embeddings counted once, untied output head included)."""
        return self.num_layers * self.params_per_layer + 2 * self.embedding_params

    @property
    def active_params_per_layer(self) -> int:
        """Parameters touched per token (differs from stored parameters for MoE)."""
        norms = 2 * self.hidden_size
        if self.is_moe:
            active_mlp = (self.experts_per_token + self.shared_experts) * self.mlp_params_per_expert
            router = self.hidden_size * self.num_experts
            return self.attention_params_per_layer + active_mlp + router + norms
        return self.params_per_layer

    @property
    def param_bytes(self) -> float:
        return self.num_parameters * FP16_BYTES

    def describe(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "family": self.family.value,
            "layers": self.num_layers,
            "hidden": self.hidden_size,
            "params_billion": self.num_parameters / 1e9,
        }


def _dense(name, layers, hidden, heads, kv_heads, ffn, vocab=32000, seq=4096, gated=True):
    return ModelConfig(
        name=name,
        family=ModelFamily.TRANSFORMER,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=kv_heads,
        ffn_hidden=ffn,
        vocab_size=vocab,
        default_seq_len=seq,
        gated_mlp=gated,
    )


MODEL_ZOO: Dict[str, ModelConfig] = {
    # --- dense models used throughout the evaluation -------------------------------
    "llama2-7b": _dense("llama2-7b", 32, 4096, 32, 32, 11008),
    "llama-65b": _dense("llama-65b", 80, 8192, 64, 64, 22016),
    "llama2-30b": _dense("llama2-30b", 60, 6656, 52, 52, 17920),
    "llama3-70b": _dense("llama3-70b", 80, 8192, 64, 8, 28672, vocab=128256, seq=8192),
    "llama3-405b": _dense("llama3-405b", 126, 16384, 128, 8, 53248, vocab=128256, seq=8192),
    "gpt-175b": _dense("gpt-175b", 96, 12288, 96, 96, 49152, vocab=50257, seq=2048, gated=False),
    # --- MoE models -----------------------------------------------------------------
    "gshard-137b": ModelConfig(
        name="gshard-137b",
        family=ModelFamily.MOE_TRANSFORMER,
        num_layers=36,
        hidden_size=2048,
        num_heads=32,
        num_kv_heads=32,
        ffn_hidden=8192,
        vocab_size=32000,
        default_seq_len=2048,
        gated_mlp=False,
        num_experts=128,
        experts_per_token=2,
    ),
    "deepseek-v3-671b": ModelConfig(
        name="deepseek-v3-671b",
        family=ModelFamily.MOE_TRANSFORMER,
        num_layers=61,
        hidden_size=7168,
        num_heads=128,
        num_kv_heads=128,
        ffn_hidden=2048,
        vocab_size=129280,
        default_seq_len=4096,
        gated_mlp=True,
        num_experts=256,
        experts_per_token=8,
        shared_experts=1,
    ),
    "qwen3-next-80b-a3b": ModelConfig(
        name="qwen3-next-80b-a3b",
        family=ModelFamily.MOE_TRANSFORMER,
        num_layers=48,
        hidden_size=2048,
        num_heads=16,
        num_kv_heads=2,
        # Routed experts are narrow (512-wide intermediate): 512 experts x 48 layers
        # lands at the model's ~80B stored parameters with ~3B active per token.
        ffn_hidden=512,
        vocab_size=151936,
        default_seq_len=8192,
        gated_mlp=True,
        num_experts=512,
        experts_per_token=10,
        shared_experts=1,
    ),
    # --- emerging architectures (Fig. 19) --------------------------------------------
    "mamba-2.8b": ModelConfig(
        name="mamba-2.8b",
        family=ModelFamily.MAMBA,
        num_layers=64,
        hidden_size=2560,
        num_heads=1,
        num_kv_heads=1,
        ffn_hidden=5120,
        vocab_size=50280,
        default_seq_len=8192,
        gated_mlp=False,
        state_dim=128,
    ),
    "sd-3.5-large": ModelConfig(
        name="sd-3.5-large",
        family=ModelFamily.DIFFUSION,
        num_layers=38,
        hidden_size=2432,
        num_heads=38,
        num_kv_heads=38,
        ffn_hidden=9728,
        vocab_size=49408,
        default_seq_len=4096,
        gated_mlp=False,
    ),
    "gr-24": ModelConfig(
        name="gr-24",
        family=ModelFamily.RECOMMENDER,
        num_layers=24,
        hidden_size=4096,
        num_heads=32,
        num_kv_heads=32,
        ffn_hidden=16384,
        vocab_size=2000000,
        default_seq_len=2048,
        gated_mlp=False,
    ),
}


def get_model(name: str) -> ModelConfig:
    """Look up a model configuration by name, with a helpful error for typos."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model '{name}'; known models: {known}") from None
