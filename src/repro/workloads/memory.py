"""Training memory-footprint model.

The paper splits training state into two categories (§IV-A):

* **modelP** — weights, gradients and optimizer states.  These must stay resident for
  the whole training run; under mixed precision with Adam they cost 16 bytes per
  parameter (FP16 weights + FP16 gradients + FP32 momentum, variance and master copy).
* **activation checkpoints** — per-micro-batch activations retained for the backward
  pass.  They are optional: any subset can be regenerated via recomputation, which is
  what the GCMR scheduler exploits.

The 1F1B pipeline schedule makes checkpoint retention stage-dependent: a die at pipeline
stage ``s`` out of ``p`` holds activations for up to ``p - s`` in-flight micro-batches,
which is exactly the memory imbalance shown in Fig. 5c / Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.units import FP16_BYTES, FP32_BYTES
from repro.workloads.models import ModelConfig
from repro.workloads.transformer import embedding_operator, layer_checkpoint_bytes

#: Mixed-precision Adam training state per parameter: FP16 weight + FP16 gradient +
#: FP32 momentum + FP32 variance + FP32 master weight.
MODEL_STATE_BYTES_PER_PARAM = 2 * FP16_BYTES + 3 * FP32_BYTES


@dataclass(frozen=True)
class StageMemoryBreakdown:
    """Per-die memory footprint of one pipeline stage."""

    stage: int
    weight_bytes: float
    gradient_bytes: float
    optimizer_bytes: float
    checkpoint_bytes: float

    @property
    def model_state_bytes(self) -> float:
        return self.weight_bytes + self.gradient_bytes + self.optimizer_bytes

    @property
    def total_bytes(self) -> float:
        return self.model_state_bytes + self.checkpoint_bytes


class TrainingMemoryModel:
    """Computes per-die memory footprints for a model under a (TP, PP) split.

    Instances memoize the per-layer checkpoint volumes (which require building the
    layer's operator graph) and the balanced layer split, so the search loops — which
    share one model instance across thousands of plan probes via the evaluator — pay
    the operator-graph construction once per (micro-batch, sequence) shape.
    """

    def __init__(self, model: ModelConfig) -> None:
        self.model = model
        self._layer_ckpt_bytes: Dict[Tuple[int, int], float] = {}
        self._embed_ckpt_bytes: Dict[Tuple[int, int], float] = {}
        self._layer_splits: Dict[int, List[int]] = {}

    def _layer_checkpoint_bytes(self, micro_batch: int, seq: int) -> float:
        key = (micro_batch, seq)
        value = self._layer_ckpt_bytes.get(key)
        if value is None:
            value = layer_checkpoint_bytes(self.model, micro_batch, seq)
            self._layer_ckpt_bytes[key] = value
        return value

    def _embedding_checkpoint_bytes(self, micro_batch: int, seq: int) -> float:
        key = (micro_batch, seq)
        value = self._embed_ckpt_bytes.get(key)
        if value is None:
            value = embedding_operator(self.model, micro_batch, seq).checkpoint_bytes
            self._embed_ckpt_bytes[key] = value
        return value

    # ------------------------------------------------------------------ model states
    def total_model_state_bytes(self) -> float:
        """modelP for the whole model (weights + gradients + optimizer states)."""
        return self.model.num_parameters * MODEL_STATE_BYTES_PER_PARAM

    def layers_per_stage(self, pp: int) -> List[int]:
        """Balanced layer assignment across ``pp`` pipeline stages.

        Returns a fresh list; the memoized split itself is never handed out.
        """
        if pp <= 0:
            raise ValueError("pipeline parallel degree must be positive")
        split = self._layer_splits.get(pp)
        if split is None:
            base, extra = divmod(self.model.num_layers, pp)
            split = [base + (1 if s < extra else 0) for s in range(pp)]
            self._layer_splits[pp] = split
        return list(split)

    def stage_param_count(self, stage: int, pp: int) -> float:
        """Parameters held by one pipeline stage (embeddings live on the edge stages)."""
        layers = self.layers_per_stage(pp)[stage]
        params = layers * self.model.params_per_layer
        if stage == 0:
            params += self.model.embedding_params
        if stage == pp - 1:
            params += self.model.embedding_params
        return float(params)

    def stage_model_state_bytes(self, stage: int, pp: int, tp: int) -> float:
        """Per-die modelP bytes at a given stage under a TP degree of ``tp``."""
        if tp <= 0:
            raise ValueError("tensor parallel degree must be positive")
        return self.stage_param_count(stage, pp) * MODEL_STATE_BYTES_PER_PARAM / tp

    # ------------------------------------------------------------------ activations
    def checkpoint_bytes_per_microbatch(
        self, stage: int, pp: int, tp: int, micro_batch: int, seq: int
    ) -> float:
        """Per-die checkpoint bytes one micro-batch leaves behind at ``stage``."""
        layers = self.layers_per_stage(pp)[stage]
        per_layer = self._layer_checkpoint_bytes(micro_batch, seq) / tp
        total = layers * per_layer
        if stage == 0:
            total += self._embedding_checkpoint_bytes(micro_batch, seq) / tp
        return total

    def retained_microbatches(self, stage: int, pp: int, num_microbatches: int) -> int:
        """In-flight micro-batches a 1F1B stage retains at peak (``min(p - s, n)``)."""
        if not 0 <= stage < pp:
            raise ValueError("stage index out of range")
        return min(pp - stage, num_microbatches)

    def stage_breakdown(
        self,
        stage: int,
        pp: int,
        tp: int,
        micro_batch: int,
        seq: int,
        num_microbatches: int,
        recompute_fraction: float = 0.0,
    ) -> StageMemoryBreakdown:
        """Full per-die memory breakdown of a stage.

        ``recompute_fraction`` is the share of checkpoint bytes that GCMR chose to drop
        and regenerate; the remaining ``1 - fraction`` stays resident.
        """
        if not 0.0 <= recompute_fraction <= 1.0:
            raise ValueError("recompute fraction must be within [0, 1]")
        params = self.stage_param_count(stage, pp) / tp
        retained = self.retained_microbatches(stage, pp, num_microbatches)
        ckpt = (
            self.checkpoint_bytes_per_microbatch(stage, pp, tp, micro_batch, seq)
            * retained
            * (1.0 - recompute_fraction)
        )
        return StageMemoryBreakdown(
            stage=stage,
            weight_bytes=params * FP16_BYTES,
            gradient_bytes=params * FP16_BYTES,
            optimizer_bytes=params * 3 * FP32_BYTES,
            checkpoint_bytes=ckpt,
        )

    def pipeline_breakdown(
        self,
        pp: int,
        tp: int,
        micro_batch: int,
        seq: int,
        num_microbatches: int,
        recompute_fractions: Sequence[float] = (),
    ) -> List[StageMemoryBreakdown]:
        """Memory breakdown of every stage; ``recompute_fractions`` may be per-stage."""
        fractions = list(recompute_fractions) or [0.0] * pp
        if len(fractions) != pp:
            raise ValueError("recompute_fractions must have one entry per stage")
        return [
            self.stage_breakdown(s, pp, tp, micro_batch, seq, num_microbatches, fractions[s])
            for s in range(pp)
        ]

    def fits(
        self,
        die_capacity: float,
        pp: int,
        tp: int,
        micro_batch: int,
        seq: int,
        num_microbatches: int,
        recompute_fractions: Sequence[float] = (),
    ) -> bool:
        """True when every stage's per-die footprint fits in ``die_capacity`` bytes."""
        breakdown = self.pipeline_breakdown(
            pp, tp, micro_batch, seq, num_microbatches, recompute_fractions
        )
        return all(stage.total_bytes <= die_capacity for stage in breakdown)
