"""Fundamental operator units (paper Fig. 10a).

The paper decomposes a transformer block into a small set of operator units — layer
normalisation, the Q/K/V/projection GEMMs, FlashAttention, the MLP GEMMs and the
element-wise activation — each annotated with its compute, weight and checkpoint
characteristics.  WATOS schedules recomputation at this operator granularity, so the
operator is the atomic unit of the whole framework.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict


class OperatorKind(enum.Enum):
    """Computation type of an operator unit."""

    GEMM = "gemm"
    FLASH_ATTENTION = "flash_attention"
    NORM = "norm"
    ACTIVATION = "activation"
    EMBEDDING = "embedding"
    ROUTER = "router"
    SCAN = "scan"          # Mamba-style selective state-space scan
    CONV = "conv"          # diffusion / recommender convolutional blocks
    ELEMENTWISE = "elementwise"


#: Operator kinds whose forward output is usually worth checkpointing (large activation,
#: cheap to recompute) — used as the default recomputation candidates.
CHEAP_TO_RECOMPUTE = frozenset(
    {OperatorKind.NORM, OperatorKind.ACTIVATION, OperatorKind.ELEMENTWISE}
)


@dataclass(frozen=True)
class Operator:
    """One operator unit of a model layer.

    All quantities describe the **unsharded** operator for a single micro-batch; the TP
    engine divides them by the tensor-parallel degree where appropriate.

    Attributes
    ----------
    name:
        Human-readable identifier, unique within a layer graph.
    kind:
        Computation type (GEMM, FlashAttention, …).
    flops:
        Forward-pass floating point operations.
    weight_bytes:
        Parameter bytes owned by this operator (FP16).
    checkpoint_bytes:
        Bytes of the activation that must be retained for the backward pass if the
        operator output is checkpointed rather than recomputed.
    output_bytes:
        Bytes produced for the next operator (used for inter-operator communication).
    tp_shardable:
        Whether tensor parallelism divides this operator's compute and weights.
    tp_allreduce_bytes:
        Bytes all-reduced across the TP group after this operator in the forward pass
        (non-zero only for the row-parallel GEMMs that close a Megatron-style pair).
    recomputable:
        Whether the operator may be selected for recomputation by the GCMR scheduler.
    """

    name: str
    kind: OperatorKind
    flops: float
    weight_bytes: float = 0.0
    checkpoint_bytes: float = 0.0
    output_bytes: float = 0.0
    tp_shardable: bool = True
    tp_allreduce_bytes: float = 0.0
    recomputable: bool = True
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for attr in ("flops", "weight_bytes", "checkpoint_bytes", "output_bytes", "tp_allreduce_bytes"):
            if getattr(self, attr) < 0:
                raise ValueError(f"operator '{self.name}': {attr} cannot be negative")

    @property
    def backward_flops(self) -> float:
        """Backward pass costs roughly twice the forward FLOPs (grad wrt input + weights)."""
        return 2.0 * self.flops

    def sharded(self, tp: int) -> "Operator":
        """The per-die view of this operator under a TP degree of ``tp``."""
        if tp <= 0:
            raise ValueError("tensor parallel degree must be positive")
        if tp == 1 or not self.tp_shardable:
            return self
        return replace(
            self,
            flops=self.flops / tp,
            weight_bytes=self.weight_bytes / tp,
            checkpoint_bytes=self.checkpoint_bytes / tp,
            output_bytes=self.output_bytes / tp,
        )

    def scaled(self, factor: float) -> "Operator":
        """Scale all extensive quantities (used for batch-size / sequence scaling)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            flops=self.flops * factor,
            checkpoint_bytes=self.checkpoint_bytes * factor,
            output_bytes=self.output_bytes * factor,
            tp_allreduce_bytes=self.tp_allreduce_bytes * factor,
        )
