"""Training workload descriptor: a model plus batching/sequence parameters.

This is the ``W`` that flows through Algorithms 1–3 of the paper.  It bundles the model
configuration with global batch size, micro-batch size and sequence length, and exposes
the derived quantities (micro-batch count, FLOPs per iteration, modelP bytes) the
schedulers need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.models import ModelConfig
from repro.workloads.operators import Operator
from repro.workloads.transformer import build_layer_graph, layer_flops


@dataclass(frozen=True)
class TrainingWorkload:
    """A model together with the batching parameters of one training iteration."""

    model: ModelConfig
    global_batch_size: int = 512
    micro_batch_size: int = 1
    sequence_length: int = 0  # 0 → use the model's default

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0 or self.micro_batch_size <= 0:
            raise ValueError("batch sizes must be positive")
        if self.global_batch_size % self.micro_batch_size != 0:
            raise ValueError("global batch size must be a multiple of the micro-batch size")
        if self.sequence_length < 0:
            raise ValueError("sequence length cannot be negative")

    @property
    def seq_len(self) -> int:
        return self.sequence_length or self.model.default_seq_len

    def with_sequence_length(self, seq: int) -> "TrainingWorkload":
        return replace(self, sequence_length=seq)

    def with_batch(self, global_batch_size: int, micro_batch_size: int = 1) -> "TrainingWorkload":
        return replace(
            self, global_batch_size=global_batch_size, micro_batch_size=micro_batch_size
        )

    # ------------------------------------------------------------------ derived sizes
    def num_microbatches(self, dp: int = 1) -> int:
        """Micro-batches per pipeline per iteration for a data-parallel degree of ``dp``."""
        if dp <= 0:
            raise ValueError("data parallel degree must be positive")
        per_replica = self.global_batch_size // dp
        if per_replica == 0:
            raise ValueError("global batch size is smaller than the data-parallel degree")
        return max(1, per_replica // self.micro_batch_size)

    @property
    def tokens_per_iteration(self) -> int:
        return self.global_batch_size * self.seq_len

    @property
    def memory_model(self) -> TrainingMemoryModel:
        return TrainingMemoryModel(self.model)

    @property
    def model_state_bytes(self) -> float:
        """modelP: weights + gradients + optimizer states for the whole model."""
        return self.memory_model.total_model_state_bytes()

    def layer_operators(self) -> List[Operator]:
        """Operator units of one layer for one micro-batch."""
        return build_layer_graph(self.model, self.micro_batch_size, self.seq_len)

    def microbatch_layer_flops(self) -> float:
        """Forward FLOPs of one layer for one micro-batch."""
        return layer_flops(self.model, self.micro_batch_size, self.seq_len)

    def iteration_flops(self) -> float:
        """Total forward+backward FLOPs of one training iteration (backward ≈ 2× forward)."""
        microbatches = self.global_batch_size // self.micro_batch_size
        fwd = self.microbatch_layer_flops() * self.model.num_layers * microbatches
        return 3.0 * fwd

    def describe(self) -> dict:
        return {
            "model": self.model.name,
            "global_batch": self.global_batch_size,
            "micro_batch": self.micro_batch_size,
            "seq_len": self.seq_len,
            "iteration_pflops": self.iteration_flops() / 1e15,
        }
