"""Operator-graph builders for the model families in the zoo.

``build_layer_graph`` decomposes one layer of a model into the operator units of
Fig. 10a.  The returned operators are *unsharded* and describe a single micro-batch;
the TP engine later divides compute/weights by the tensor-parallel degree, and the
pipeline model multiplies by the number of layers per stage and micro-batches.

Per-operator ``checkpoint_bytes`` is the activation retained for the backward pass when
the operator is **not** recomputed; dropping the checkpoint and re-running the forward
pass during backward is exactly the recomputation choice GCMR schedules.
"""

from __future__ import annotations

from typing import List

from repro.units import FP16_BYTES
from repro.workloads.models import ModelConfig, ModelFamily
from repro.workloads.operators import Operator, OperatorKind


def _act_bytes(batch: int, seq: int, width: int) -> float:
    return float(batch * seq * width * FP16_BYTES)


def _norm(name: str, model: ModelConfig, batch: int, seq: int) -> Operator:
    h = model.hidden_size
    return Operator(
        name=name,
        kind=OperatorKind.NORM,
        flops=5.0 * batch * seq * h,
        weight_bytes=2.0 * h * FP16_BYTES,
        checkpoint_bytes=_act_bytes(batch, seq, h),
        output_bytes=_act_bytes(batch, seq, h),
        tp_shardable=False,
    )


def _attention_ops(model: ModelConfig, batch: int, seq: int, causal: bool) -> List[Operator]:
    h = model.hidden_size
    kv = model.kv_hidden
    qkv_width = h + 2 * kv
    ops = [
        _norm("attn_norm", model, batch, seq),
        Operator(
            name="qkv_proj",
            kind=OperatorKind.GEMM,
            flops=2.0 * batch * seq * h * qkv_width,
            weight_bytes=h * qkv_width * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, qkv_width),
            output_bytes=_act_bytes(batch, seq, qkv_width),
        ),
        Operator(
            name="flash_attention",
            kind=OperatorKind.FLASH_ATTENTION,
            flops=(2.0 if causal else 4.0) * batch * seq * seq * h,
            weight_bytes=0.0,
            # FlashAttention only retains the output and the softmax statistics, not the
            # full S×S score matrix — its distinguishing memory characteristic (§IV-B).
            checkpoint_bytes=_act_bytes(batch, seq, h) + batch * seq * model.num_heads * 4.0,
            output_bytes=_act_bytes(batch, seq, h),
        ),
        Operator(
            name="attn_out_proj",
            kind=OperatorKind.GEMM,
            flops=2.0 * batch * seq * h * h,
            weight_bytes=h * h * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, h),
            output_bytes=_act_bytes(batch, seq, h),
            # Row-parallel GEMM closing the Megatron attention pair: its output is
            # all-reduced across the TP group in the forward pass.
            tp_allreduce_bytes=_act_bytes(batch, seq, h),
        ),
    ]
    return ops


def _mlp_ops(model: ModelConfig, batch: int, seq: int) -> List[Operator]:
    h, f = model.hidden_size, model.ffn_hidden
    up_matrices = 2 if model.gated_mlp else 1
    ops = [
        _norm("mlp_norm", model, batch, seq),
        Operator(
            name="mlp_up_proj",
            kind=OperatorKind.GEMM,
            flops=2.0 * batch * seq * h * f * up_matrices,
            weight_bytes=up_matrices * h * f * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, f * up_matrices),
            output_bytes=_act_bytes(batch, seq, f * up_matrices),
        ),
        Operator(
            name="mlp_activation",
            kind=OperatorKind.ACTIVATION,
            flops=8.0 * batch * seq * f,
            checkpoint_bytes=_act_bytes(batch, seq, f),
            output_bytes=_act_bytes(batch, seq, f),
            tp_shardable=True,
        ),
        Operator(
            name="mlp_down_proj",
            kind=OperatorKind.GEMM,
            flops=2.0 * batch * seq * f * h,
            weight_bytes=f * h * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, h),
            output_bytes=_act_bytes(batch, seq, h),
            tp_allreduce_bytes=_act_bytes(batch, seq, h),
        ),
    ]
    return ops


def _moe_mlp_ops(model: ModelConfig, batch: int, seq: int) -> List[Operator]:
    h, f = model.hidden_size, model.ffn_hidden
    up_matrices = 2 if model.gated_mlp else 1
    active = model.experts_per_token + model.shared_experts
    stored = model.num_experts + model.shared_experts
    router = Operator(
        name="moe_router",
        kind=OperatorKind.ROUTER,
        flops=2.0 * batch * seq * h * model.num_experts,
        weight_bytes=h * model.num_experts * FP16_BYTES,
        checkpoint_bytes=_act_bytes(batch, seq, model.num_experts),
        output_bytes=_act_bytes(batch, seq, h),
        tp_shardable=False,
        metadata={"all_to_all_bytes": _act_bytes(batch, seq, h)},
    )
    expert_up = Operator(
        name="moe_expert_up",
        kind=OperatorKind.GEMM,
        flops=2.0 * batch * seq * h * f * up_matrices * active,
        weight_bytes=stored * up_matrices * h * f * FP16_BYTES,
        checkpoint_bytes=_act_bytes(batch, seq, f * up_matrices) * active,
        output_bytes=_act_bytes(batch, seq, f * up_matrices) * active,
    )
    expert_act = Operator(
        name="moe_expert_activation",
        kind=OperatorKind.ACTIVATION,
        flops=8.0 * batch * seq * f * active,
        checkpoint_bytes=_act_bytes(batch, seq, f) * active,
        output_bytes=_act_bytes(batch, seq, f) * active,
    )
    expert_down = Operator(
        name="moe_expert_down",
        kind=OperatorKind.GEMM,
        flops=2.0 * batch * seq * f * h * active,
        weight_bytes=stored * f * h * FP16_BYTES,
        checkpoint_bytes=_act_bytes(batch, seq, h),
        output_bytes=_act_bytes(batch, seq, h),
        tp_allreduce_bytes=_act_bytes(batch, seq, h),
    )
    return [_norm("mlp_norm", model, batch, seq), router, expert_up, expert_act, expert_down]


def _mamba_ops(model: ModelConfig, batch: int, seq: int) -> List[Operator]:
    h, f, n = model.hidden_size, model.ffn_hidden, max(model.state_dim, 16)
    return [
        _norm("mamba_norm", model, batch, seq),
        Operator(
            name="mamba_in_proj",
            kind=OperatorKind.GEMM,
            flops=2.0 * batch * seq * h * f,
            weight_bytes=h * f * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, f),
            output_bytes=_act_bytes(batch, seq, f),
        ),
        Operator(
            name="selective_scan",
            kind=OperatorKind.SCAN,
            flops=10.0 * batch * seq * f * n,
            weight_bytes=(4.0 * n + 2.0) * h * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, f),
            output_bytes=_act_bytes(batch, seq, f),
            tp_shardable=True,
        ),
        Operator(
            name="mamba_out_proj",
            kind=OperatorKind.GEMM,
            flops=2.0 * batch * seq * f * h,
            weight_bytes=f * h * FP16_BYTES,
            checkpoint_bytes=_act_bytes(batch, seq, h),
            output_bytes=_act_bytes(batch, seq, h),
            tp_allreduce_bytes=_act_bytes(batch, seq, h),
        ),
    ]


def build_layer_graph(model: ModelConfig, batch: int, seq: int) -> List[Operator]:
    """Return the ordered operator units of one layer of ``model``.

    Parameters
    ----------
    model:
        Model configuration from the zoo.
    batch:
        Micro-batch size (sequences).
    seq:
        Sequence length (tokens per sequence).
    """
    if batch <= 0 or seq <= 0:
        raise ValueError("batch size and sequence length must be positive")
    if model.family is ModelFamily.MAMBA:
        return _mamba_ops(model, batch, seq)
    causal = model.family in (ModelFamily.TRANSFORMER, ModelFamily.MOE_TRANSFORMER,
                              ModelFamily.RECOMMENDER)
    ops = _attention_ops(model, batch, seq, causal=causal)
    if model.is_moe:
        ops.extend(_moe_mlp_ops(model, batch, seq))
    else:
        ops.extend(_mlp_ops(model, batch, seq))
    return ops


def layer_flops(model: ModelConfig, batch: int, seq: int) -> float:
    """Total forward FLOPs of one layer for one micro-batch."""
    return sum(op.flops for op in build_layer_graph(model, batch, seq))


def layer_checkpoint_bytes(model: ModelConfig, batch: int, seq: int) -> float:
    """Bytes of activation checkpoints one layer retains when nothing is recomputed."""
    return sum(op.checkpoint_bytes for op in build_layer_graph(model, batch, seq))


def embedding_operator(model: ModelConfig, batch: int, seq: int) -> Operator:
    """The (shared) input embedding / output head operator, placed on the edge stages."""
    h, v = model.hidden_size, model.vocab_size
    return Operator(
        name="embedding",
        kind=OperatorKind.EMBEDDING,
        flops=2.0 * batch * seq * h * v,
        weight_bytes=2.0 * v * h * FP16_BYTES,
        checkpoint_bytes=_act_bytes(batch, seq, h),
        output_bytes=_act_bytes(batch, seq, h),
        tp_shardable=True,
        recomputable=False,
    )
