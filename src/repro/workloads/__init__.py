"""LLM workloads: model zoo, operator graphs and the training memory-footprint model."""

from repro.workloads.operators import Operator, OperatorKind
from repro.workloads.models import MODEL_ZOO, ModelConfig, get_model
from repro.workloads.transformer import build_layer_graph, layer_flops, layer_checkpoint_bytes
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.workload import TrainingWorkload

__all__ = [
    "Operator",
    "OperatorKind",
    "MODEL_ZOO",
    "ModelConfig",
    "get_model",
    "build_layer_graph",
    "layer_flops",
    "layer_checkpoint_bytes",
    "TrainingMemoryModel",
    "TrainingWorkload",
]
