"""The unified runtime: one object owning pools, caches and every search loop.

The paper's workflow is one pipeline — workload × wafer → plan search → DSE — and
:class:`Session` is its one entry point.  A session owns

* the process :class:`~repro.core.parallel_map.WorkerPool` (forked lazily, shared by
  every loop the session runs, joined on exit),
* the shared :class:`~repro.core.evalcache.EvaluationCache` (optionally persistent,
  read-through, compacted on exit), and
* the wafer/workload registry declarative specs resolve against.

``Session.run(spec)`` executes an :class:`~repro.api.ExperimentSpec` on any of the
four search loops and returns a uniform :class:`~repro.api.RunResult`; entering the
session (``with Session(...):``) additionally makes it *ambient*, so legacy-style
bare loop calls inside the block share its pool and cache instead of building
ephemeral ones.  :func:`default_session` parks one process-wide session for scripts
that want sharing without a ``with`` block.

Everything a session does is pure orchestration — pool pricing is memoization, cache
warm starts round-trip exactly — so ``Session.run`` is bit-identical to the legacy
direct-call path (asserted in ``tests/test_session.py``).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import queue
import threading
import time
import traceback
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Union

from repro.obs import tracer as _obs
from repro.obs.report import fold_timings
from repro.obs.tracefile import write_trace

from repro.core import runtime
from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import Evaluator
from repro.core.framework import Watos
from repro.core.genetic import GeneticOptimizer
from repro.core.hardware_dse import DieGranularityDse
from repro.core.parallel_map import PoolConfig, WorkerPool, resolve_workers
from repro.core.retry import RetryPolicy
from repro.api import registry
from repro.api.result import RunResult
from repro.api.results import ResultStore, make_record, open_result_store
from repro.api.spec import ExperimentSpec
from repro.api.sweep import ScheduleConfig, SweepSpec, as_sweep_spec
from repro.fabric.protocol import FabricConnectionError, looks_like_endpoint, parse_endpoint

__all__ = [
    "Session",
    "SweepCellError",
    "close_default_session",
    "default_session",
]


class SweepCellError(RuntimeError):
    """A sweep cell exhausted its retries under ``keep_going=False`` (fail-fast).

    The failed cell was still recorded in the result store (so a later resume
    knows about it) before the sweep aborted.
    """

    def __init__(self, cell_id: str, label: str, error: str) -> None:
        reason = error.strip().splitlines()[-1] if error.strip() else "unknown error"
        super().__init__(f"sweep cell {cell_id} ({label or 'unnamed'}) failed: {reason}")
        self.cell_id = cell_id
        self.label = label
        self.error = error


class Session:
    """Owns the worker pool, the evaluation cache and the experiment registry.

    Parameters
    ----------
    pool:
        The worker runtime shared by every loop this session runs: a
        :class:`~repro.core.parallel_map.PoolConfig` (elastic sizing), a plain
        worker count (``None``/0/1 serial, negative = all CPUs), or an existing
        :class:`WorkerPool` to adopt (the caller owns and closes it).  The pool is
        forked lazily on first use and joined when the session closes.
    workers:
        Deprecated alias of ``pool`` (warns once; kept for pre-PoolConfig callers).
    cache / store:
        Either an existing :class:`EvaluationCache` to adopt (flushed but not
        closed on exit — the caller owns it), or a store path (``.jsonl`` /
        ``.sqlite``) the session opens (and closes) itself.  With neither, the
        session builds a fresh in-memory cache.  A ``store`` of the shape
        ``host:port[/namespace]`` instead connects to a ``repro serve``
        coordinator: the coordinator owns the authoritative cache/result stores,
        this session keeps an in-memory cache warm-started (and delta-synced)
        over the wire, and :meth:`sweep` claims cells from the coordinator's
        leased queue instead of walking the matrix locally.
    read_through / max_entries / namespace:
        Forwarded to :class:`EvaluationCache` when the session builds it.
    compact_on_exit / compact_max_entries / compact_max_age_s:
        When set, :meth:`close` compacts the attached store (fold append-only
        history to one row per key; optionally evict by count and by age).
    results:
        Either an existing :class:`~repro.api.results.ResultStore` to adopt (the
        caller owns and closes it), or a path (``.jsonl`` / ``.sqlite``) the
        session opens (and closes) itself.  The store becomes *ambient* the same
        way the cache is: every :meth:`sweep` on (or inside) this session streams
        completed cells to it unless the call names its own.
    results_compact:
        When set, :meth:`close` compacts the session's result store — folds
        duplicate rows (``--no-resume`` re-runs append one per cell) to one row
        per ``cell_id``, later wins — the result-store mirror of
        ``compact_on_exit``.
    trace:
        A path; enables the :mod:`repro.obs` tracer for this session's lifetime
        and writes the recorded spans (workers' included) there as a versioned
        JSONL span log on :meth:`close`.  ``repro profile <path>`` renders it.
        Tracing is volatile-only: results are bit-identical with it on or off.
    """

    def __init__(
        self,
        workers: Optional[Union[int, WorkerPool]] = None,
        cache: Optional[EvaluationCache] = None,
        store: Optional[str] = None,
        *,
        pool: Optional[Union[int, PoolConfig, WorkerPool]] = None,
        read_through: bool = False,
        max_entries: Optional[int] = 65536,
        namespace: Optional[str] = None,
        compact_on_exit: bool = False,
        compact_max_entries: Optional[int] = None,
        compact_max_age_s: Optional[float] = None,
        results: Optional[Union[str, os.PathLike, ResultStore]] = None,
        results_compact: bool = False,
        retry: Optional[RetryPolicy] = None,
        trace: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        if cache is not None and store is not None:
            raise ValueError("pass either cache= (adopted) or store= (owned), not both")
        if workers is not None:
            if pool is not None:
                raise ValueError(
                    "pass either pool= or the deprecated workers= alias, not both"
                )
            runtime.warn_legacy(
                "Session(workers=...)",
                hint="pass pool= (an int, PoolConfig or WorkerPool) instead",
            )
            pool = workers
        #: Connected :class:`~repro.fabric.client.FabricClient` when ``store`` names
        #: a ``repro serve`` coordinator (``host:port[/namespace]``), else ``None``.
        self.fabric = None
        if cache is None and looks_like_endpoint(store):
            endpoint = parse_endpoint(store)  # raises the actionable bad-port error
            if namespace is not None and namespace != endpoint.namespace:
                raise ValueError(
                    f"namespace={namespace!r} conflicts with the endpoint's "
                    f"'/{endpoint.namespace}' — name the namespace in one place, "
                    f"e.g. store='{endpoint.address}/{namespace}'"
                )
            from repro.fabric.client import FabricClient

            # Fails here — not at first claim — when the coordinator is down.
            self.fabric = FabricClient(endpoint)
            store = None  # the coordinator owns the stores; local cache is in-memory
        self._owns_cache = cache is None
        self.cache: EvaluationCache = (
            cache
            if cache is not None
            else EvaluationCache(
                max_entries=max_entries,
                store=store,
                namespace=namespace,
                read_through=read_through,
            )
        )
        self._adopted_pool = isinstance(pool, WorkerPool)
        self._pool: Optional[WorkerPool] = pool if self._adopted_pool else None
        self._pool_config: Optional[PoolConfig] = (
            pool if isinstance(pool, PoolConfig) else None
        )
        if self._adopted_pool:
            self.workers: int = pool.workers
        elif self._pool_config is not None:
            self.workers = self._pool_config.resolved()[1]
        else:
            self.workers = resolve_workers(pool)
        self.compact_on_exit = (
            compact_on_exit or compact_max_entries is not None or compact_max_age_s is not None
        )
        self.compact_max_entries = compact_max_entries
        self.compact_max_age_s = compact_max_age_s
        self._owns_results = isinstance(results, (str, os.PathLike))
        self.results: Optional[ResultStore] = (
            open_result_store(results) if self._owns_results else results
        )
        self.results_compact = results_compact
        #: Default :class:`RetryPolicy` for this session's sweeps (a ``sweep``
        #: call's own ``retry=`` wins).  ``None`` means the built-in defaults.
        self.retry = retry
        self._trace_path: Optional[str] = os.fspath(trace) if trace is not None else None
        self._trace_meta: Dict[str, Any] = {}
        self._trace_mark = 0
        self._trace_enabled_here = False
        if self._trace_path is not None:
            self._trace_enabled_here = not _obs.is_enabled()
            _obs.enable()
            self._trace_mark = _obs.mark()
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ pool/cache
    @property
    def pool(self) -> Optional[WorkerPool]:
        """The session's persistent worker pool (``None`` when the session is serial).

        Forked on first access, bound to the session cache, reused by every loop the
        session runs — nested sweeps borrow these workers instead of building
        ephemeral pools.
        """
        if self._closed or self.workers <= 1:
            return None
        with self._pool_lock:  # concurrent cell threads must share one pool
            if self._pool is None:
                config = self._pool_config or PoolConfig(max_workers=self.workers)
                self._pool = WorkerPool(cache=self.cache, config=config)
            return self._pool

    @property
    def parallel(self) -> Optional[WorkerPool]:
        """What loops pass to the runtime layer (the session protocol attribute)."""
        return self.pool

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Join the pool, flush (and optionally compact) the store.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        runtime.pop_session(self)
        if self._pool is not None and not self._adopted_pool:
            self._pool.close()
        self.cache.flush()
        if self.compact_on_exit and self.cache.store is not None:
            self.cache.compact(
                max_entries=self.compact_max_entries, max_age_s=self.compact_max_age_s
            )
        if self._owns_cache:
            self.cache.close()
        if self.results_compact and self.results is not None:
            self.results.compact()
        if self._owns_results and self.results is not None:
            self.results.close()
        if self.fabric is not None:
            self.fabric.close()
        if self._trace_path is not None:
            # Written last: the pool is joined, so every worker ring the carries
            # shipped is already merged into this process's tracer.
            write_trace(
                self._trace_path, _obs.records(since=self._trace_mark), meta=self._trace_meta
            )
            if self._trace_enabled_here:
                _obs.disable()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        if self._closed:
            raise RuntimeError("session is closed")
        runtime.push_session(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __reduce__(self):
        raise TypeError("Session is process-local and cannot be pickled")

    # ------------------------------------------------------------------ registry
    @staticmethod
    def register_wafer(name: str, factory) -> None:
        registry.register_wafer(name, factory)

    @staticmethod
    def register_workload(name: str, factory) -> None:
        registry.register_workload(name, factory)

    # ------------------------------------------------------------------ execution
    def run(self, spec: Union[ExperimentSpec, Dict]) -> RunResult:
        """Execute one experiment spec and return a uniform :class:`RunResult`.

        Bit-identical to wiring the loop up by hand: the session only supplies the
        shared cache and pool, and both are pure memoization/transport.  The cache
        is flushed to its store (when one is attached) before returning.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        runner = {
            "scheduler": self._run_scheduler,
            "ga": self._run_ga,
            "dse": self._run_dse,
            "watos": self._run_watos,
        }[spec.kind]
        trace_mark = _obs.mark() if _obs.enabled else None
        start = time.perf_counter()
        run_result = runner(spec)
        run_result.seconds = time.perf_counter() - start
        run_result.label = spec.name or spec.kind
        run_result.cache_stats = self.cache.stats.as_dict()
        self.cache.flush()
        if trace_mark is not None and _obs.enabled:
            # Volatile diagnostics only (never stored/fingerprinted).  Under
            # jobs>1 concurrent cells share the ring, so per-run totals may
            # include sibling spans — the trace file keeps the exact timeline.
            run_result.timings = fold_timings(_obs.records(since=trace_mark))
        return run_result

    def sweep(
        self,
        sweep: Union[SweepSpec, ExperimentSpec, Dict, list, tuple],
        results: Optional[Union[str, os.PathLike, ResultStore]] = None,
        *,
        resume: bool = True,
        completed: Optional[set] = None,
        retry: Optional[RetryPolicy] = None,
        keep_going: bool = True,
        skip_failed: bool = False,
        jobs: Optional[int] = None,
        schedule: Optional[ScheduleConfig] = None,
    ) -> Iterable[RunResult]:
        """Stream a :class:`SweepSpec` matrix: yield each :class:`RunResult` as it
        completes, on one shared pool and one warm cache.

        With a result store attached — the ``results=`` argument (path or open
        :class:`~repro.api.results.ResultStore`), else the session's own
        ``Session(results=...)``, else the ambient one — every completed cell is
        written through immediately, and (unless ``resume=False``) cells whose
        ``cell_id`` the store already holds are skipped, not re-run and not
        yielded.  Pricing is pure and cell ids are content-derived, so an
        interrupted-and-resumed matrix stores byte-identical rows to a fresh run.
        ``completed=`` overrides the store lookup with a precomputed id set, so a
        caller that already read the store (the CLI) avoids a second full load.

        **Fault tolerance.**  Each cell runs under ``retry`` (the call's policy,
        else the session's, else :class:`RetryPolicy` defaults): a cell whose
        attempt raises — a task exception, a worker crash the pool could not
        absorb (:class:`~repro.core.parallel_map.WorkerCrashError`), or a
        :class:`~repro.core.runtime.CellTimeout` from the policy's ``timeout_s``
        — is retried with deterministic backoff, and after ``max_attempts`` it is
        **quarantined**: yielded (and recorded) as a ``status="failed"``
        :class:`RunResult` carrying the captured traceback, while the sweep moves
        on.  ``keep_going=False`` (fail-fast) instead raises
        :class:`SweepCellError` right after recording the failure.  On resume,
        failed cells are re-attempted unless ``skip_failed=True``.

        **Two-level scheduling.**  ``jobs=N`` (or ``schedule=ScheduleConfig(...)``,
        which also carries a ``max_buffered`` back-pressure bound; a ``jobs`` field
        on the :class:`SweepSpec` itself is the fallback) runs up to N whole cells
        concurrently on threads, while each running cell's search loop fans out on
        the shared session pool — the pool leases slots per map call, so wide
        fan-outs backfill capacity a narrow sibling leaves idle.  Results are
        still yielded in cell order (out-of-order completions are buffered), rows
        still stream to the store the moment a cell completes (possibly out of
        order — resume and export key by ``cell_id`` and never cared about row
        order), retry/quarantine still applies per cell, and every row is
        bit-identical to the serial walk because pricing is pure.

        A bare ``list`` of :class:`ExperimentSpec` still works exactly as before —
        wrapped as a trivial :class:`SweepSpec` after a one-time
        ``DeprecationWarning``, and run *eagerly* to an indexable list, the PR 4
        contract.  Pass ``SweepSpec.from_specs([...])`` to get the streaming
        generator (and no warning) for an explicit cell list.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if (
            not isinstance(sweep, (SweepSpec, ExperimentSpec, Mapping, str, bytes))
            and not isinstance(sweep, (list, tuple))
            and hasattr(sweep, "__iter__")
        ):
            # PR 4 accepted any iterable of specs; keep generators/iterators on
            # the same shim path as bare lists.
            sweep = list(sweep)
        legacy_list = isinstance(sweep, (list, tuple))
        if legacy_list:
            runtime.warn_legacy(
                "Session.sweep(list)",
                hint="wrap the specs in a SweepSpec "
                "(repro.api.SweepSpec.from_specs) instead",
            )
            # The PR 4 contract was one result per spec, positionally — never
            # skip, even when a store already holds some of the cells.
            resume = False
        spec = as_sweep_spec(sweep)
        cells = spec.expand()
        if self._trace_path is not None:
            # Content-derived matrix fingerprint for the trace header: stable
            # across a resume of the same matrix (span timestamps are not).
            digest = hashlib.sha256(
                "\n".join(cell.cell_id for cell in cells).encode("utf-8")
            ).hexdigest()[:16]
            self._trace_meta = {"fingerprint": digest, "cells": len(cells)}
        if schedule is not None and jobs is not None:
            raise ValueError("pass either jobs= or schedule=ScheduleConfig(...), not both")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        effective_jobs = schedule.jobs if schedule is not None else jobs
        if effective_jobs is None:
            effective_jobs = spec.jobs if spec.jobs is not None else 1
        if legacy_list:
            effective_jobs = 1  # the positional-list contract predates scheduling
        max_buffered = schedule.max_buffered if schedule is not None else None
        owns_store = isinstance(results, (str, os.PathLike))
        store: Optional[ResultStore]
        if owns_store:
            store = open_result_store(results)
        elif results is not None:
            store = results
        elif self.results is not None:
            store = self.results
        else:
            store = runtime.current_results()
        policy = retry or self.retry or RetryPolicy()
        if self.fabric is not None and not legacy_list:
            # Distributed mode: the coordinator owns the queue, resume semantics
            # and the authoritative store.  A local ``results=``/ambient store (if
            # any) still gets rows written through, so each host keeps a replica.
            return self._sweep_fabric_iter(
                cells, store, owns_store, policy, keep_going, skip_failed
            )
        if effective_jobs > 1 and len(cells) > 1:
            stream = self._sweep_parallel_iter(
                cells, store, resume, owns_store, completed, policy, keep_going,
                skip_failed, effective_jobs, max_buffered,
            )
        else:
            stream = self._sweep_iter(
                cells, store, resume, owns_store, completed, policy, keep_going,
                skip_failed,
            )
        return list(stream) if legacy_list else stream

    def _sweep_iter(
        self,
        cells,
        store: Optional[ResultStore],
        resume: bool,
        owns_store: bool,
        completed: Optional[set],
        retry: RetryPolicy,
        keep_going: bool,
        skip_failed: bool,
    ) -> Iterator[RunResult]:
        try:
            if not resume:
                completed = set()
            elif completed is None:
                completed = (
                    set(store.completed_ids(include_failed=skip_failed))
                    if store is not None
                    else set()
                )
            for cell in cells:
                if cell.cell_id in completed:
                    continue
                run = self._run_cell(cell, retry)
                if store is not None:
                    store.put(cell.cell_id, make_record(run, cell.spec))
                if run.failed and not keep_going:
                    raise SweepCellError(cell.cell_id, run.label, run.error)
                yield run
        finally:
            if owns_store and store is not None:
                store.close()

    def _sweep_parallel_iter(
        self,
        cells,
        store: Optional[ResultStore],
        resume: bool,
        owns_store: bool,
        completed: Optional[set],
        retry: RetryPolicy,
        keep_going: bool,
        skip_failed: bool,
        jobs: int,
        max_buffered: Optional[int],
    ) -> Iterator[RunResult]:
        """Level 1 of the two-level scheduler: whole cells on concurrent threads.

        Up to ``jobs`` cell threads claim work from a shared cursor and run the
        ordinary :meth:`_run_cell` retry loop; inside each, the search loops fan
        out on the shared session pool, which leases worker slots per map call —
        so the matrix and the intra-cell parallelism share one set of workers.
        Cell state that must not leak between siblings (task tag, attempt
        deadline) is already thread-local in :mod:`repro.core.runtime`, and the
        session cache is lock-protected, so threads only meet at the pool's slot
        lease and the completion queue below.

        Only this generator thread touches the result store: completions arrive on
        a queue and are recorded immediately (rows may land out of cell order —
        resume and export never depended on row order), while yields are buffered
        back into cell order so the stream looks exactly like the serial walk.
        Early consumer exit (or fail-fast) stops the cursor, then drains — cells
        already in flight finish and their rows are recorded, matching the serial
        walk's record-before-raise contract.
        """
        try:
            if not resume:
                completed = set()
            elif completed is None:
                completed = (
                    set(store.completed_ids(include_failed=skip_failed))
                    if store is not None
                    else set()
                )
            todo = [cell for cell in cells if cell.cell_id not in completed]
            if not todo:
                return
            done_queue: "queue.Queue" = queue.Queue()
            cursor_lock = threading.Lock()
            cursor = [0]
            stop = threading.Event()
            gate = threading.BoundedSemaphore(max_buffered) if max_buffered else None

            def claim() -> Optional[int]:
                with cursor_lock:
                    if stop.is_set() or cursor[0] >= len(todo):
                        return None
                    position = cursor[0]
                    cursor[0] += 1
                    return position

            def cell_worker() -> None:
                while True:
                    if gate is not None:
                        # Timed re-checks instead of a bare acquire, so stopping
                        # the sweep can never strand a thread on the semaphore.
                        while not gate.acquire(timeout=0.05):
                            if stop.is_set():
                                return
                    position = claim()
                    if position is None:
                        if gate is not None:
                            gate.release()
                        return
                    cell = todo[position]
                    try:
                        run = self._run_cell(cell, retry)
                    except BaseException as exc:  # _run_cell quarantines Exceptions
                        done_queue.put((position, cell, None, exc))
                        return
                    done_queue.put((position, cell, run, None))

            threads = [
                threading.Thread(
                    target=cell_worker, name=f"sweep-cell-{index}", daemon=True
                )
                for index in range(min(jobs, len(todo)))
            ]
            for thread in threads:
                thread.start()
            buffered: Dict[int, RunResult] = {}
            next_yield = 0
            received = 0
            failure: Optional[SweepCellError] = None
            try:
                while received < len(todo) and failure is None:
                    position, cell, run, exc = done_queue.get()
                    received += 1
                    if exc is not None:
                        raise exc
                    if store is not None:
                        store.put(cell.cell_id, make_record(run, cell.spec))
                    if gate is not None:
                        gate.release()
                    if run.failed and not keep_going:
                        # Record first (done above), then fail fast: stop handing
                        # out new cells; in-flight siblings drain in `finally`.
                        failure = SweepCellError(cell.cell_id, run.label, run.error)
                        break
                    buffered[position] = run
                    while next_yield in buffered:
                        yield buffered.pop(next_yield)
                        next_yield += 1
                if failure is not None:
                    raise failure
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
                # Record whatever was still in flight when we stopped early —
                # completed pricing must reach the store, as in the serial walk.
                while True:
                    try:
                        position, cell, run, exc = done_queue.get_nowait()
                    except queue.Empty:
                        break
                    if run is not None and store is not None:
                        store.put(cell.cell_id, make_record(run, cell.spec))
        finally:
            if owns_store and store is not None:
                store.close()

    def _sweep_fabric_iter(
        self,
        cells,
        store: Optional[ResultStore],
        owns_store: bool,
        retry: RetryPolicy,
        keep_going: bool,
        skip_failed: bool,
    ) -> Iterator[RunResult]:
        """Distributed sweep: claim cells from the coordinator's leased queue.

        The local retry loop is replaced by the coordinator's *global* budget — one
        claim is one attempt, requeues carry the attempt count across hosts, and the
        coordinator (not this host) decides when a cell quarantines.  Each completed
        cell streams its row write-through to the coordinator plus a cache delta
        (``export_since`` watermark), so sibling hosts warm-start off each other's
        pricing.  Yield order is claim order, not matrix order: with several hosts
        draining one queue there is no meaningful global matrix order anyway.

        Degradation: losing the coordinator mid-sweep first burns the client's
        bounded reconnect/backoff budget; once spent, the in-flight cell is
        quarantined *locally* (a ``status="failed"`` row in the local store when one
        is attached — or, when the cell had already finished pricing, its real row
        is salvaged there) and the :class:`FabricConnectionError` propagates.
        """
        client = self.fabric
        by_id = {cell.cell_id: cell for cell in cells}
        current = None  # cell granted to us and not yet acknowledged
        current_run: Optional[RunResult] = None
        try:
            client.register(
                [
                    {
                        "id": cell.cell_id,
                        "kind": cell.spec.kind,
                        "label": cell.spec.name or cell.spec.kind,
                        "spec": cell.spec.to_dict(),
                    }
                    for cell in cells
                ],
                max_attempts=retry.max_attempts,
                skip_failed=skip_failed,
            )
            self.cache.seed(client.cache_pull())  # warm-start off sibling pricing
            watermark = self.cache.sync_seq
            client.start_heartbeats()
            while True:
                grant = client.claim()
                if grant.get("drained"):
                    break
                if grant.get("wait"):
                    time.sleep(float(grant.get("poll_s", 0.2)))
                    continue
                cell = by_id.get(str(grant.get("cell", "")))
                if cell is None:  # pragma: no cover - defensive; claims are host-scoped
                    continue
                attempt = int(grant.get("attempt", 1))
                current, current_run = cell, None
                run, error = self._attempt_cell(cell, retry)
                if run is not None:
                    run.attempts = attempt
                    current_run = run
                    record = make_record(run, cell.spec)
                    client.complete(cell.cell_id, record)
                    delta, watermark = self.cache.export_since(watermark)
                    client.cache_push(delta)
                    if store is not None:
                        store.put(cell.cell_id, record)
                    current = current_run = None
                    yield run
                    continue
                failed = RunResult(
                    kind=cell.spec.kind,
                    label=cell.spec.name or cell.spec.kind,
                    cell_id=cell.cell_id,
                    status="failed",
                    error=error,
                    attempts=attempt,
                )
                reply = client.fail(cell.cell_id, make_record(failed, cell.spec))
                current = None
                if reply.get("quarantined"):
                    if store is not None:
                        store.put(cell.cell_id, make_record(failed, cell.spec))
                    if not keep_going:
                        raise SweepCellError(cell.cell_id, failed.label, error)
                    yield failed
                    continue
                # Requeued (or a stale report the reaper already handled): back off
                # with the policy's deterministic delay before claiming again.
                delay = retry.delay_s(attempt, cell.cell_id)
                if delay > 0:
                    time.sleep(delay)
        except FabricConnectionError:
            if current is not None and store is not None:
                if current_run is not None:
                    # The cell finished pricing but the ack was lost: salvage the
                    # real row locally so `repro results merge` can fold it back.
                    store.put(current.cell_id, make_record(current_run, current.spec))
                else:
                    quarantined = RunResult(
                        kind=current.spec.kind,
                        label=current.spec.name or current.spec.kind,
                        cell_id=current.cell_id,
                        status="failed",
                        error=(
                            "connection to the sweep coordinator was lost while this "
                            "cell was in flight; quarantined locally"
                        ),
                        attempts=1,
                    )
                    store.put(current.cell_id, make_record(quarantined, current.spec))
            raise
        finally:
            if owns_store and store is not None:
                store.close()

    def serve(
        self,
        trace,
        *,
        fleet: Optional[list] = None,
        policy: str = "fcfs",
        results: Optional[Union[str, os.PathLike, ResultStore]] = None,
        resume: bool = True,
        flush_every: int = 1,
        max_tp: int = 0,
    ):
        """Serve a trace of arriving jobs online and return the ``ServeReport``.

        ``trace`` is a :class:`~repro.online.trace.Trace` or a path to a
        ``watos-trace`` JSONL file (``repro trace gen`` writes them).  Jobs are
        placed on the fleet by the named :mod:`~repro.online.policy` (``fcfs``,
        ``edf`` or ``affinity``), priced through this session's cache and pool by
        the paper's own :class:`~repro.core.central_scheduler.CentralScheduler`,
        and every job's queueing metrics stream write-through into the result
        store — the ``results=`` argument, else the session's own, else the
        ambient one, exactly like :meth:`sweep`.  All stored timestamps are
        *virtual*, so re-serving the same trace (same fleet, same policy) writes
        byte-identical rows; with ``resume=True`` rows already stored are skipped
        instead of rewritten.  ``fleet`` overrides the trace's own wafer list;
        ``flush_every`` batches store writes (1 = true write-through).
        """
        if self._closed:
            raise RuntimeError("session is closed")
        from repro.online.engine import OnlineEngine  # late: avoids import cycles

        owns_store = isinstance(results, (str, os.PathLike))
        store: Optional[ResultStore]
        if owns_store:
            store = open_result_store(results)
        elif results is not None:
            store = results
        elif self.results is not None:
            store = self.results
        else:
            store = runtime.current_results()
        engine = OnlineEngine(
            self,
            fleet=fleet,
            policy=policy,
            store=store,
            resume=resume,
            flush_every=flush_every,
            max_tp=max_tp,
        )
        try:
            report = engine.serve(trace)
        finally:
            if owns_store and store is not None:
                store.close()
        self.cache.flush()
        return report

    def _attempt_cell(self, cell, retry: RetryPolicy):
        """One tagged, deadline-armed attempt: ``(run, "")`` or ``(None, traceback)``.

        The single-attempt core of :meth:`_run_cell`, reused by the fabric claim
        loop where the *coordinator* owns the retry budget.
        """
        runtime.set_task_tag(cell.cell_id)
        if retry.timeout_s is not None:
            runtime.set_deadline(time.monotonic() + retry.timeout_s)
        try:
            with _obs.span("cell", tag=cell.cell_id):
                run = self.run(cell.spec)
        except Exception:
            return None, traceback.format_exc()
        else:
            run.cell_id = cell.cell_id
            return run, ""
        finally:
            runtime.set_task_tag("")
            runtime.set_deadline(None)

    def _run_cell(self, cell, retry: RetryPolicy) -> RunResult:
        """One sweep cell under the retry policy: attempt, back off, quarantine.

        Every attempt is tagged with the cell id (the ambient
        :func:`repro.core.runtime.task_tag`, which the chaos harness targets) and,
        when the policy carries a ``timeout_s``, armed with a monotonic deadline
        that the pool supervisor and the serial fallback both enforce.  Success
        returns the (pure, bit-identical) run with only the volatile ``attempts``
        counter reflecting the bumps; exhaustion returns a quarantined
        ``status="failed"`` result carrying the last traceback instead of raising,
        so one poison cell cannot sink the matrix.
        """
        spec = cell.spec
        last_error = ""
        attempt = 0
        while True:
            attempt += 1
            run, last_error = self._attempt_cell(cell, retry)
            if run is not None:
                run.attempts = attempt
                return run
            if not retry.should_retry(attempt):
                break
            delay = retry.delay_s(attempt, cell.cell_id)
            if delay > 0:
                time.sleep(delay)
        return RunResult(
            kind=spec.kind,
            label=spec.name or spec.kind,
            cell_id=cell.cell_id,
            status="failed",
            error=last_error,
            attempts=attempt,
        )

    def _spec_parallel(self, spec: ExperimentSpec):
        """The parallelism a spec runs with: the session pool, else the spec's hint."""
        pool = self.pool
        if pool is not None:
            return pool
        return spec.workers

    def _handle(self, spec: ExperimentSpec) -> runtime.SessionHandle:
        """A session handle carrying this session's cache and the spec's parallelism."""
        return runtime.SessionHandle(
            cache=self.cache, parallel=self._spec_parallel(spec), results=self.results
        )

    def _scheduler(self, spec: ExperimentSpec, wafer, evaluator=None) -> CentralScheduler:
        kwargs: Dict[str, Any] = {"max_tp": spec.max_tp}
        split = spec.resolved_split_strategies()
        if split is not None:
            kwargs["split_strategies"] = split
        collective = spec.resolved_collective()
        if collective is not None:
            kwargs["collective"] = collective
        if evaluator is None:
            evaluator = Evaluator(wafer, cache=self.cache)
        return CentralScheduler(wafer, evaluator=evaluator, **kwargs)

    def _run_scheduler(self, spec: ExperimentSpec) -> RunResult:
        wafer = registry.resolve_wafer(spec.wafer_refs()[0])
        workload = registry.resolve_workload(spec.workload_refs()[0])
        scheduler = self._scheduler(spec, wafer)
        records = scheduler.explore(workload, session=self._handle(spec))
        feasible = [r for r in records if not r.result.oom]
        best = max(feasible, key=lambda r: r.throughput) if feasible else None
        return RunResult(
            kind=spec.kind,
            plan=best.plan if best else None,
            result=best.result if best else None,
            metrics={
                "records": len(records),
                "feasible": len(feasible),
                "throughput": best.result.throughput if best else 0.0,
                "iteration_time": best.result.iteration_time if best else float("inf"),
            },
            details=records,
        )

    def _run_ga(self, spec: ExperimentSpec) -> RunResult:
        wafer = registry.resolve_wafer(spec.wafer_refs()[0])
        workload = registry.resolve_workload(spec.workload_refs()[0])
        evaluator = Evaluator(wafer, cache=self.cache)
        scheduler = self._scheduler(spec, wafer, evaluator=evaluator)
        seed = scheduler.best(workload, session=self._handle(spec))
        if seed is None:
            return RunResult(kind=spec.kind, metrics={"feasible": 0, "throughput": 0.0})
        ga = GeneticOptimizer(evaluator, workload, spec.ga_config())
        outcome = ga.optimize(seed.plan, session=self._handle(spec))
        return RunResult(
            kind=spec.kind,
            plan=outcome.best_plan,
            result=outcome.best_result,
            metrics={
                "best_fitness": outcome.best_fitness,
                "throughput": outcome.best_result.throughput,
                "generations": outcome.generations,
                "seed_throughput": seed.result.throughput,
            },
            details=outcome,
        )

    def _run_dse(self, spec: ExperimentSpec) -> RunResult:
        workload = registry.resolve_workload(spec.workload_refs()[0])
        dse = DieGranularityDse(
            workload,
            areas_mm2=tuple(spec.areas_mm2),
            aspect_ratios=tuple(spec.aspect_ratios),
            session=self,
        )
        points = dse.sweep(
            max_tp=spec.max_tp or 8, session=self._handle(spec)
        )
        best = DieGranularityDse.best_point(points) if points else None
        metrics: Dict[str, Any] = {"points": len(points)}
        if best is not None:
            metrics.update(
                best_design=best.name,
                best_objective=best.objective,
                best_category=best.category,
            )
        return RunResult(kind=spec.kind, metrics=metrics, details=points)

    def _run_watos(self, spec: ExperimentSpec) -> RunResult:
        wafers = [registry.resolve_wafer(ref) for ref in spec.wafer_refs()]
        workloads = [registry.resolve_workload(ref) for ref in spec.workload_refs()]
        kwargs: Dict[str, Any] = {"max_tp": spec.max_tp, "use_ga": spec.use_ga}
        split = spec.resolved_split_strategies()
        if split is not None:
            kwargs["split_strategies"] = split
        collective = spec.resolved_collective()
        if collective is not None:
            kwargs["collective"] = collective
        watos = Watos(
            candidates=wafers, ga_config=spec.ga_config(), session=self, **kwargs
        )
        result = watos.explore(workloads, session=self._handle(spec), nest=spec.nest)
        best_wafer = result.best_wafer()
        best = None
        for outcome in result.outcomes:
            if best is None or outcome.throughput > best.throughput:
                best = outcome
        metrics: Dict[str, Any] = {
            "outcomes": len(result.outcomes),
            "best_wafer": best_wafer,
            "throughput": best.throughput if best else 0.0,
        }
        return RunResult(
            kind=spec.kind,
            plan=best.plan if best else None,
            result=best.result if best else None,
            metrics=metrics,
            details=result,
        )

    # ------------------------------------------------------------------ default
    @classmethod
    def default(cls, workers: Optional[int] = None, **kwargs: Any) -> "Session":
        """The process-wide default session (see :func:`default_session`)."""
        return default_session(workers, **kwargs)


def default_session(workers: Optional[int] = None, **kwargs: Any) -> Session:
    """The process-wide shared session, created on first call.

    Later calls return the same object (arguments are ignored once it exists), so
    library code and scripts can say ``default_session().run(spec)`` — or configure
    workers once (``default_session(workers=8)``) and have every bare loop call in
    the process share that pool instead of building ephemeral ones.  The session is
    closed automatically at interpreter exit (joining the pool and flushing any
    store); :func:`close_default_session` closes it earlier.
    """
    existing = runtime.get_default_session()
    if existing is not None and not existing.closed:
        return existing
    if workers is not None:  # the documented shorthand, not the deprecated kwarg
        kwargs.setdefault("pool", workers)
    session = Session(**kwargs)
    runtime.set_default_session(session)
    return session


def close_default_session() -> None:
    """Close and discard the process-wide default session (no-op without one)."""
    existing = runtime.get_default_session()
    if existing is not None:
        existing.close()
    runtime.set_default_session(None)


atexit.register(close_default_session)
