"""Declarative sweep grammar over :class:`~repro.api.ExperimentSpec` matrices.

The paper's headline results are matrices, not single runs — the wafer×workload
product of Alg. 1, the die-granularity sweep of Fig. 25, the multi-wafer GA of
Fig. 24 — and :class:`SweepSpec` is the grammar that describes one compactly:

* ``base`` — the :class:`ExperimentSpec` defaults every cell starts from;
* ``grid`` — cartesian-product axes, ``{knob path: [values…]}``;
* ``zip`` — locked-step axes that vary together (all lists the same length);
* ``seeds`` — fan every cell into N decorrelated RNG streams via the existing
  :meth:`GAConfig.stream(i) <repro.core.genetic.GAConfig.stream>` convention.

Knob paths are dotted: plain spec fields (``wafer``, ``population``) or the grouped
aliases ``ga.population``, ``scheduler.max_tp``, ``dse.areas_mm2`` …; paths may also
reach into mapping-valued fields (``workload.global_batch_size``).  A mistyped path
fails at construction with a did-you-mean suggestion, never a bare ``KeyError``.

:meth:`SweepSpec.expand` is deterministic: grid axes in declaration order (rightmost
fastest), then the zipped row, then the seed index, each cell an ordered
``(cell_id, ExperimentSpec)`` pair.  The ``cell_id`` is a stable content-derived key
(a fingerprint of the expanded spec, minus its display name), which is what makes
``Session.sweep(..., results=...)`` resumable: a restarted sweep skips every cell
whose id is already in the result store, and relabeling or reordering the matrix
never invalidates completed work.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.evalcache import fingerprint
from repro.core.genetic import GAConfig
from repro.api.spec import ExperimentSpec, did_you_mean

__all__ = ["ScheduleConfig", "SweepCell", "SweepSpec", "as_sweep_spec", "stream_seed"]

#: Dotted knob groups: ``ga.population`` etc. alias the flat ExperimentSpec fields.
KNOB_GROUPS: Dict[str, Tuple[str, ...]] = {
    "ga": (
        "population",
        "generations",
        "omega",
        "mutation_rate",
        "crossover_rate",
        "seed",
        "use_ga",
    ),
    "scheduler": ("max_tp", "split_strategies", "collective"),
    "dse": ("areas_mm2", "aspect_ratios"),
}


#: Sub-keys a nested knob path may set inside mapping-valued spec fields.  The
#: resolvers silently drop unknown mapping keys, so an unvalidated sub-path typo
#: would configure nothing — exactly the failure mode knob paths exist to prevent.
NESTED_KNOBS: Dict[str, Tuple[str, ...]] = {
    "workload": ("model", "global_batch_size", "micro_batch_size", "sequence_length"),
}


def _spec_fields() -> Tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(ExperimentSpec))


def _knob_vocabulary() -> List[str]:
    """Every path a grid/zip axis may name (for did-you-mean suggestions)."""
    paths = [name for name in _spec_fields() if name != "extras"]
    for group, knobs in KNOB_GROUPS.items():
        paths.extend(f"{group}.{knob}" for knob in knobs)
    for fieldname, subkeys in NESTED_KNOBS.items():
        paths.extend(f"{fieldname}.{key}" for key in subkeys)
    return paths


def resolve_knob(path: str) -> Tuple[str, Tuple[str, ...]]:
    """A dotted knob path → ``(spec field, nested sub-path)``.

    ``ga.population`` → ``("population", ())``; ``workload.model`` →
    ``("workload", ("model",))``.  Unknown paths raise a ``ValueError`` naming the
    offending path and the closest real knob.
    """
    head, _, rest = str(path).partition(".")
    fields = _spec_fields()
    if head in KNOB_GROUPS:
        if not rest:
            knobs = ", ".join(f"{head}.{k}" for k in KNOB_GROUPS[head])
            raise ValueError(f"{path}: names a knob group, not a knob; pick one of {knobs}")
        if rest not in KNOB_GROUPS[head]:
            return _unknown_knob(path)
        return rest, ()
    if head in fields and head != "extras":
        if not rest:
            return head, ()
        subpath = tuple(rest.split("."))
        known = NESTED_KNOBS.get(head)
        if known is not None:
            if subpath[0] not in known:
                return _unknown_knob(path)
            if len(subpath) > 1:
                # The known sub-keys are scalar; descending further would clobber
                # one with a dict and blow up deep inside workload resolution.
                raise ValueError(
                    f"{path}: {head}.{subpath[0]} is a scalar knob; "
                    "it has no sub-keys"
                )
        return head, subpath
    return _unknown_knob(path)


def _unknown_knob(path: str) -> Tuple[str, Tuple[str, ...]]:
    hint = did_you_mean(str(path), _knob_vocabulary())
    suggestion = f"; did you mean {hint}?" if hint else ""
    raise ValueError(
        f"{path}: unknown knob{suggestion} (knobs are ExperimentSpec fields or "
        "the ga./scheduler./dse. aliases)"
    )


def apply_knob(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``path`` to ``value`` in a spec-shaped dict (nested mapping paths copy)."""
    fieldname, subpath = resolve_knob(path)
    if not subpath:
        data[fieldname] = value
        return
    node = data.get(fieldname)
    if node is None:
        node = {}
    if not isinstance(node, Mapping):
        raise ValueError(
            f"{path}: cannot descend into {fieldname!r} "
            f"(it holds {type(node).__name__}, not a mapping)"
        )
    root = dict(node)
    data[fieldname] = root
    for part in subpath[:-1]:
        child = root.get(part)
        if child is not None and not isinstance(child, Mapping):
            raise ValueError(
                f"{path}: cannot descend through {part!r} "
                f"(it holds {type(child).__name__}, not a mapping)"
            )
        child = dict(child) if isinstance(child, Mapping) else {}
        root[part] = child
        root = child
    root[subpath[-1]] = value


def stream_seed(base_seed: int, index: int) -> int:
    """The per-cell RNG seed of fan index ``index`` (the ``GAConfig.stream`` convention).

    Stream 0 is the base seed itself, so ``seeds=1`` is a no-op and a seed fan's
    first cell is bit-identical to the unfanned sweep.
    """
    return GAConfig(seed=int(base_seed)).stream(index).seed


def _value_label(value: Any) -> str:
    """A compact human label for one axis value (used in synthesized cell names)."""
    if isinstance(value, Mapping):
        value = value.get("model", "…")
    name = getattr(value, "name", None)
    if name is None:
        model = getattr(value, "model", None)
        name = getattr(model, "name", None)
    if name is not None and not isinstance(value, (str, int, float, bool)):
        return str(name)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_value_label(v) for v in value) + "]"
    return str(value)


class SweepCell(NamedTuple):
    """One expanded cell: a stable content-derived id and the spec it runs."""

    cell_id: str
    spec: ExperimentSpec


@dataclass(frozen=True)
class ScheduleConfig:
    """How ``Session.sweep`` schedules whole cells onto the runtime.

    ``jobs`` is how many cells may be in flight at once (level 1 of the two-level
    scheduler; each running cell's search loop still fans out on the shared pool).
    ``max_buffered`` bounds how many completed-but-not-yet-yielded results the
    in-order stream may hold before dispatch pauses — back-pressure for consumers
    much slower than pricing (``None`` = unbounded).  Cell results, store rows and
    resume behaviour are identical for every ``jobs`` value; only wall-clock
    changes.
    """

    jobs: int = 1
    max_buffered: Optional[int] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.max_buffered is not None and self.max_buffered < 1:
            raise ValueError("max_buffered must be at least 1 (or None for unbounded)")


def cell_key(spec: ExperimentSpec) -> str:
    """The stable content-derived id of one cell.

    A fingerprint of the expanded spec *minus its display name* — renaming or
    reordering a matrix never changes what a cell is, so completed cells in a
    result store stay valid across cosmetic edits.  Fields are fingerprinted at
    full value (``canonicalize`` descends into wafer/workload config objects), not
    through the lossy name reduction of ``to_dict`` — two distinct configs that
    happen to share a display name must never collide on one cell id, or a
    resumed sweep would serve one config's stored rows as the other's results.
    Fields still at their defaults are dropped, so adding a spec knob later never
    invalidates existing stores.
    """
    data: Dict[str, Any] = {}
    for spec_field in dataclasses.fields(spec):
        if spec_field.name == "name":
            continue
        value = getattr(spec, spec_field.name)
        if spec_field.default is not dataclasses.MISSING and value == spec_field.default:
            continue
        if spec_field.default is dataclasses.MISSING and not value:
            continue  # default_factory fields (extras): empty means default
        data[spec_field.name] = value
    return fingerprint(data)[:16]


@dataclass
class SweepSpec:
    """A compact description of an experiment matrix (see module docstring).

    ``specs`` is the escape hatch for matrices that are already an explicit list of
    :class:`ExperimentSpec` cells (what the legacy ``Session.sweep([...])`` call
    wraps itself in); it cannot be combined with the grammar axes.
    """

    base: Union[Dict[str, Any], ExperimentSpec] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    zip: Dict[str, Sequence[Any]] = field(default_factory=dict)
    seeds: int = 1
    name: str = ""
    specs: Optional[List[Union[Dict[str, Any], ExperimentSpec]]] = None
    #: Default cell concurrency when the ``Session.sweep`` call passes neither
    #: ``jobs=`` nor ``schedule=`` — a sweep file can declare "run me 4 cells
    #: wide".  Purely a scheduling hint: results are identical for any value.
    jobs: Optional[int] = None

    #: The keys :meth:`from_dict` accepts (everything else is a typo).
    FIELDS = ("base", "grid", "zip", "seeds", "name", "specs", "jobs")

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be at least 1")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be at least 1 (or omitted for serial)")
        if self.specs is not None and (self.grid or self.zip or self.seeds != 1 or self.base):
            raise ValueError(
                "specs= is an explicit cell list; it cannot be combined with "
                "base/grid/zip/seeds"
            )
        for axis, paths in (("grid", self.grid), ("zip", self.zip)):
            for path, values in paths.items():
                resolve_knob(path)  # fail at construction, naming the path
                if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                    raise ValueError(f"{path}: {axis} values must be a list, not {values!r}")
                if not values:
                    raise ValueError(f"{path}: {axis} axis is empty")
        if self.zip:
            lengths = {path: len(values) for path, values in self.zip.items()}
            if len(set(lengths.values())) > 1:
                detail = ", ".join(f"{p}={n}" for p, n in lengths.items())
                raise ValueError(f"zip axes must be the same length ({detail})")

    # ------------------------------------------------------------------ expansion
    def expand(self) -> List[SweepCell]:
        """The ordered ``(cell_id, ExperimentSpec)`` cells of this matrix.

        Deterministic: grid axes in declaration order with the rightmost varying
        fastest (``itertools.product``), then the zipped row, then the seed index.
        Duplicate *grammar* cells (identical expanded content) are an error — they
        would silently collapse to one row in a result store; repeats in an
        explicit ``specs`` list instead get a deterministic ``-N`` id suffix.
        """
        if self.specs is not None:
            # Explicit lists are user-authored, so repeated content is allowed
            # (the legacy Session.sweep(list) shim ran such lists happily);
            # repeats get a deterministic position suffix instead of an error.
            cells: List[SweepCell] = []
            occurrences: Dict[str, int] = {}
            for item in self.specs:
                spec = self._as_spec(item)
                key = cell_key(spec)
                occurrences[key] = occurrences.get(key, 0) + 1
                if occurrences[key] > 1:
                    key = f"{key}-{occurrences[key]}"
                cells.append(SweepCell(key, spec))
            return cells
        base = self.base.to_dict() if isinstance(self.base, ExperimentSpec) else dict(self.base)
        grid_paths = list(self.grid)
        zip_paths = list(self.zip)
        zip_rows: List[Tuple[Any, ...]] = (
            [tuple(row) for row in zip(*(self.zip[p] for p in zip_paths))] if zip_paths else [()]
        )
        cells = []
        for combo in itertools.product(*(self.grid[p] for p in grid_paths)):
            for zip_row in zip_rows:
                assignments = list(zip(grid_paths, combo)) + list(zip(zip_paths, zip_row))
                for index in range(self.seeds):
                    data = copy.deepcopy(base)
                    labels = []
                    for path, value in assignments:
                        apply_knob(data, path, copy.deepcopy(value))
                        labels.append(f"{path}={_value_label(value)}")
                    if self.seeds > 1:
                        data["seed"] = stream_seed(data.get("seed", 0), index)
                        labels.append(f"seed[{index}]")
                    bits = [str(data.get("name") or self.name or "")] + labels
                    name = " ".join(bit for bit in bits if bit)
                    if name:
                        data["name"] = name
                    cells.append(self._cell(ExperimentSpec.from_dict(data)))
        return self._checked(cells)

    def __len__(self) -> int:
        if self.specs is not None:
            return len(self.specs)
        cells = 1
        for values in self.grid.values():
            cells *= len(values)
        if self.zip:
            cells *= len(next(iter(self.zip.values())))
        return cells * self.seeds

    @staticmethod
    def _as_spec(item: Union[Dict[str, Any], ExperimentSpec]) -> ExperimentSpec:
        return item if isinstance(item, ExperimentSpec) else ExperimentSpec.from_dict(dict(item))

    @staticmethod
    def _cell(spec: ExperimentSpec) -> SweepCell:
        return SweepCell(cell_key(spec), spec)

    @staticmethod
    def _checked(cells: List[SweepCell]) -> List[SweepCell]:
        seen: Dict[str, str] = {}
        for cell in cells:
            if cell.cell_id in seen:
                raise ValueError(
                    f"duplicate cell {cell.cell_id} "
                    f"({cell.spec.name or cell.spec.kind!r} repeats "
                    f"{seen[cell.cell_id] or cell.spec.kind!r}); every cell must be unique"
                )
            seen[cell.cell_id] = cell.spec.name
        return cells

    # ------------------------------------------------------------------ codecs
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a sweep from a plain dict; unknown keys error with a suggestion."""
        for key in data:
            if key not in cls.FIELDS:
                hint = did_you_mean(str(key), cls.FIELDS)
                suggestion = f"; did you mean {hint}?" if hint else ""
                raise ValueError(
                    f"{key}: unknown SweepSpec field{suggestion} "
                    f"(fields: {', '.join(cls.FIELDS)})"
                )
        kwargs = dict(data)
        if "grid" in kwargs:
            kwargs["grid"] = dict(kwargs["grid"])
        if "zip" in kwargs:
            kwargs["zip"] = dict(kwargs["zip"])
        return cls(**kwargs)

    @classmethod
    def from_specs(
        cls, specs: Sequence[Union[Dict[str, Any], ExperimentSpec]], name: str = ""
    ) -> "SweepSpec":
        """Wrap an explicit spec list as a trivial (pre-expanded) sweep."""
        return cls(name=name, specs=list(specs))

    @classmethod
    def from_payload(cls, payload: Any) -> "SweepSpec":
        """Normalise any spec-file payload to a sweep.

        A JSON array is an explicit cell list (the pre-grammar ``repro sweep``
        format); an object with any grammar key is a :class:`SweepSpec`; any other
        object is a single :class:`ExperimentSpec` cell.
        """
        if isinstance(payload, SweepSpec):
            return payload
        if isinstance(payload, ExperimentSpec):
            return cls.from_specs([payload])
        if isinstance(payload, (list, tuple)):
            return cls.from_specs(list(payload))
        if isinstance(payload, Mapping):
            if any(key in payload for key in cls.FIELDS if key != "name"):
                return cls.from_dict(payload)
            return cls.from_specs([ExperimentSpec.from_dict(dict(payload))])
        raise TypeError(f"cannot build a SweepSpec from {type(payload).__name__}")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "SweepSpec":
        """Load a sweep (or a legacy spec array / single spec) from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict (inverse of :meth:`from_dict`)."""
        data: Dict[str, Any] = {}
        if self.specs is not None:
            data["specs"] = [self._as_spec(item).to_dict() for item in self.specs]
        else:
            base = self.base.to_dict() if isinstance(self.base, ExperimentSpec) else dict(self.base)
            if base:
                data["base"] = base
            if self.grid:
                data["grid"] = {path: list(values) for path, values in self.grid.items()}
            if self.zip:
                data["zip"] = {path: list(values) for path, values in self.zip.items()}
            if self.seeds != 1:
                data["seeds"] = self.seeds
        if self.name:
            data["name"] = self.name
        if self.jobs is not None:
            data["jobs"] = self.jobs
        return data


def as_sweep_spec(sweep: Any) -> SweepSpec:
    """Coerce any ``Session.sweep`` argument shape into a :class:`SweepSpec`."""
    return SweepSpec.from_payload(sweep)
