"""Streaming, queryable result stores for experiment matrices.

``RunResult.to_dict()`` has always been JSON-ready; this module gives long
``Session.sweep`` matrices somewhere durable to stream it.  A :class:`ResultStore`
maps stable ``cell_id`` keys (see :func:`repro.api.sweep.cell_key`) to one record
per completed cell, written through as each cell finishes, so an interrupted sweep
resumes by skipping every id already present.

The backend split mirrors the evaluation cache exactly (``open_store`` in
:mod:`repro.core.evalcache`): :func:`open_result_store` picks JSONL (append-only
spill, torn last line skipped on load) or sqlite (keyed upserts) from the path
suffix, stores carry a versioned namespace so a schema bump degrades to a cold
start instead of serving stale rows, and a corrupt or foreign file is preserved at
``<path>.corrupt`` rather than truncated — recovery means starting cold, never an
error and never data loss.

Each record separates the deterministic from the volatile:

* ``result`` — ``RunResult.to_dict(volatile=False)``: the plan, metrics and label,
  with wall-clock and session-cumulative cache counters stripped.  Pricing is pure,
  so a completed-then-resumed sweep and a fresh serial run produce *byte-identical*
  ``result`` rows per cell.
* ``spec`` — the expanded cell's :class:`ExperimentSpec` as a dict (provenance).
* ``seconds`` / ``written_at`` — the volatile sidecar, kept for reporting.
"""

from __future__ import annotations

import csv
import json
import os
import sqlite3
import tempfile
import time
from collections import Counter, OrderedDict
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.core.evalcache import _move_aside
from repro.obs import tracer as _obs

__all__ = [
    "RESULTS_SCHEMA_VERSION",
    "JsonlResultStore",
    "ResultStore",
    "SqliteResultStore",
    "export_csv",
    "make_record",
    "merge_stores",
    "open_result_store",
    "open_store",
    "record_status",
    "results_namespace",
]

#: Version of the record layout.  Bump on incompatible change; stores written under
#: a different version are discarded on load (cold start, file reset in place).
#: v2: ``result`` rows carry ``status``/``error`` (cell quarantine), records carry
#: an ``attempts`` sidecar.
RESULTS_SCHEMA_VERSION = 2


def results_namespace() -> str:
    """The namespace persisted result stores are validated against on load."""
    return f"watos-results-v{RESULTS_SCHEMA_VERSION}"


def make_record(run, spec=None, now: Optional[float] = None) -> Dict[str, Any]:
    """The stored record of one completed cell (see module docstring)."""
    return {
        "result": run.to_dict(volatile=False),
        "spec": spec.to_dict() if spec is not None else None,
        "seconds": run.seconds,
        "attempts": getattr(run, "attempts", 1),
        "written_at": time.time() if now is None else now,
    }


def record_status(record: Dict[str, Any]) -> str:
    """The cell status a stored record reports (``"ok"`` for pre-status rows)."""
    return str((record.get("result") or {}).get("status") or "ok")


class ResultStore:
    """One record per completed sweep cell, queryable and safe to interrupt.

    Subclasses implement the persistence primitives (:meth:`load`, :meth:`put`,
    :meth:`get`, :meth:`replace_all`); the query surface (:meth:`stats`,
    :meth:`tail`, :meth:`cell_ids`) is shared.  :meth:`load` returns records in
    completion order with later duplicates winning — the same discipline as the
    evaluation cache's JSONL spill.
    """

    #: Rows skipped during the most recent :meth:`load` (corruption).
    load_errors: int = 0

    def __init__(self, path: str, namespace: Optional[str] = None) -> None:
        self.path = str(path)
        self.namespace = namespace or results_namespace()

    # ------------------------------------------------------------------ primitives
    def load(self) -> "OrderedDict[str, Dict[str, Any]]":
        """All records in completion order (``{}`` for missing/corrupt/foreign)."""
        raise NotImplementedError

    def put(self, cell_id: str, record: Dict[str, Any]) -> None:
        """Write one completed cell through to disk immediately."""
        raise NotImplementedError

    def get(self, cell_id: str) -> Optional[Dict[str, Any]]:
        """One record, or ``None``."""
        return self.load().get(cell_id)

    def put_many(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> None:
        """Write a batch of ``(cell_id, record)`` rows, in order.

        Semantically identical to calling :meth:`put` per row (same records, same
        order, later duplicates win); backends override it to amortize the
        per-write cost — one file open for JSONL, one transaction for sqlite —
        which is what lets the online engine's ``flush_every`` batching pay off.
        """
        for cell_id, record in items:
            self.put(cell_id, record)

    def replace_all(self, records: "OrderedDict[str, Dict[str, Any]]") -> None:
        """Atomically rewrite the store to exactly ``records`` (schema resets)."""
        raise NotImplementedError

    def physical_rows(self) -> int:
        """Rows physically on disk, duplicates included (what :meth:`compact` folds).

        The base implementation equals the deduped cell count; append-only
        backends override it to count raw rows.
        """
        return len(self.load())

    def compact(self) -> Dict[str, int]:
        """Fold duplicate rows to one per ``cell_id`` (later wins), via replace_all.

        JSONL stores grow append-only, so every ``--no-resume`` re-run of a matrix
        appends a fresh row per cell and only the last one wins on load — the same
        dead-row accumulation the evaluation cache compacts away.  Returns
        ``{"before": raw rows, "after": rows kept, "cells": distinct cells}``.
        """
        with _obs.span("store.compact", tag=self.path):
            before = self.physical_rows()
            records = self.load()
            self.replace_all(records)
        return {"before": before, "after": len(records), "cells": len(records)}

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any held resources (sqlite connections)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ queries
    def cell_ids(self) -> List[str]:
        """Ids of every completed cell, in completion order."""
        return list(self.load())

    def completed_ids(self, include_failed: bool = False) -> set:
        """Cell ids a resumed sweep may skip.

        By default only cells that *succeeded* count as complete — quarantined
        (``status="failed"``) rows are re-attempted on resume.  ``include_failed``
        (the ``--skip-failed`` semantics) treats failed rows as settled too.
        """
        records = self.load()
        if include_failed:
            return set(records)
        return {
            cell_id
            for cell_id, record in records.items()
            if record_status(record) != "failed"
        }

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, cell_id: str) -> bool:
        return self.get(cell_id) is not None

    def stats(self) -> Dict[str, Any]:
        """Store-level summary: cell count, per-kind histogram, time range."""
        records = self.load()
        kinds = Counter(
            (record.get("result") or {}).get("kind", "?") for record in records.values()
        )
        statuses = Counter(record_status(record) for record in records.values())
        times = [
            record["written_at"]
            for record in records.values()
            if record.get("written_at")
        ]
        seconds = [record.get("seconds", 0.0) for record in records.values()]
        return {
            "store": self.path,
            "cells": len(records),
            "kinds": dict(sorted(kinds.items())),
            "statuses": dict(sorted(statuses.items())),
            "failed": statuses.get("failed", 0),
            "load_errors": self.load_errors,
            "oldest_written_at": min(times) if times else None,
            "newest_written_at": max(times) if times else None,
            "total_run_seconds": sum(seconds),
        }

    def tail(
        self, n: int = 10, status: Optional[str] = None, kind: Optional[str] = None
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """The last ``n`` completed cells, oldest of them first.

        ``status`` filters by recorded cell status (``"failed"`` surfaces what a
        long sweep quarantined; ``"ok"`` hides it).  ``kind`` filters by result
        kind — ``kind="trace"`` tails an online run's job rows without wading
        through the sweep cells sharing the store.
        """
        if n <= 0:
            return []
        rows = list(self.load().items())
        if status is not None:
            rows = [(cid, record) for cid, record in rows if record_status(record) == status]
        if kind is not None:
            rows = [
                (cid, record)
                for cid, record in rows
                if (record.get("result") or {}).get("kind") == kind
            ]
        return rows[-n:]


class JsonlResultStore(ResultStore):
    """Append-only JSONL: one header line, then one ``{"c": …, "v": …}`` row each.

    Append-only writes make interruption safe (a torn last line is skipped on the
    next load) and write-through is a single ``O(1)`` append per completed cell.
    """

    _HEADER_FORMAT = "watos-results-jsonl"

    def __init__(self, path: str, namespace: Optional[str] = None) -> None:
        super().__init__(path, namespace)
        #: Set when the header check found a file that is not ours; the first
        #: write moves it aside to ``<path>.corrupt`` rather than truncating it.
        self._foreign_file = False
        #: Whether the on-disk header has been validated (load() or _check_file()).
        #: Writes must never append blind: a ``resume=False`` sweep reaches put()
        #: without any load(), and appending to a foreign or stale-namespace file
        #: would corrupt it / write rows the next load() discards.
        self._checked = False

    def _check_file(self) -> None:
        """Validate the header before the first blind write (no full row scan)."""
        if self._checked:
            return
        self._checked = True
        self._foreign_file = False
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                header = self._parse_header(handle.readline())
        except OSError:
            return
        if header is None:
            self._foreign_file = True
        elif header.get("namespace") != self.namespace:
            # Our file, stale schema: safe to reset in place.
            self.replace_all(OrderedDict())

    def load(self) -> "OrderedDict[str, Dict[str, Any]]":
        self.load_errors = 0
        self._checked = True
        self._foreign_file = False
        if not os.path.exists(self.path):
            return OrderedDict()
        records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                header = self._parse_header(handle.readline())
                if header is None:
                    self._foreign_file = True
                    return OrderedDict()
                if header.get("namespace") != self.namespace:
                    # Our file, stale schema: safe to reset in place.
                    self.replace_all(OrderedDict())
                    return OrderedDict()
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                        cell_id, record = str(row["c"]), dict(row["v"])
                        records.pop(cell_id, None)  # later duplicates win in position
                        records[cell_id] = record
                    except (ValueError, KeyError, TypeError):
                        self.load_errors += 1
        except OSError:
            return OrderedDict()
        return records

    def _parse_header(self, header_line: str) -> Optional[Dict]:
        try:
            header = json.loads(header_line)
        except ValueError:
            return None
        if isinstance(header, dict) and header.get("format") == self._HEADER_FORMAT:
            return header
        return None

    def _header(self) -> str:
        return json.dumps({"format": self._HEADER_FORMAT, "namespace": self.namespace})

    @staticmethod
    def _ends_with_newline(path: str) -> bool:
        try:
            with open(path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except (OSError, ValueError):  # empty file: seek(-1) raises
            return True

    def physical_rows(self) -> int:
        """Raw data lines on disk — duplicates from ``--no-resume`` re-runs included."""
        if not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                if self._parse_header(handle.readline()) is None:
                    return 0
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    def put(self, cell_id: str, record: Dict[str, Any]) -> None:
        t0 = _obs.now() if _obs.enabled else 0.0
        self._check_file()
        if self._foreign_file:
            _move_aside(self.path)
            self._foreign_file = False
        fresh = not os.path.exists(self.path)
        # A kill mid-append leaves a torn last line; appending straight after it
        # would concatenate the new row onto the fragment and lose both.  Close
        # the torn line first so only the fragment is sacrificed.
        torn = not fresh and not self._ends_with_newline(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if fresh:
                handle.write(self._header() + "\n")
            elif torn:
                handle.write("\n")
            handle.write(json.dumps({"c": cell_id, "v": record}) + "\n")
        if _obs.enabled:
            _obs.add("store.put", t0, _obs.now(), tag=cell_id)

    def put_many(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> None:
        """One append-mode open for the whole batch (rows identical to per-put)."""
        if not items:
            return
        t0 = _obs.now() if _obs.enabled else 0.0
        self._check_file()
        if self._foreign_file:
            _move_aside(self.path)
            self._foreign_file = False
        fresh = not os.path.exists(self.path)
        torn = not fresh and not self._ends_with_newline(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if fresh:
                handle.write(self._header() + "\n")
            elif torn:
                handle.write("\n")
            for cell_id, record in items:
                handle.write(json.dumps({"c": cell_id, "v": record}) + "\n")
        if _obs.enabled:
            _obs.add("store.put", t0, _obs.now(), tag=f"batch:{len(items)}")

    def replace_all(self, records: "OrderedDict[str, Dict[str, Any]]") -> None:
        self._check_file()  # no-op when re-entered from the check itself
        if self._foreign_file:
            _move_aside(self.path)
            self._foreign_file = False
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(prefix=".results-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self._header() + "\n")
                for cell_id, record in records.items():
                    handle.write(json.dumps({"c": cell_id, "v": record}) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


class SqliteResultStore(ResultStore):
    """Sqlite backend for big matrices: keyed upserts, point lookups, rowid order."""

    def __init__(self, path: str, namespace: Optional[str] = None) -> None:
        super().__init__(path, namespace)
        self._conn: Optional[sqlite3.Connection] = None

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            existed = os.path.exists(self.path)
            self._conn = sqlite3.connect(self.path)
            if existed and self._is_foreign(self._conn):
                # A valid sqlite database that is not ours (a mistyped --results
                # path): preserve it at <path>.corrupt instead of injecting our
                # tables into the user's data.
                self._reset()
                self._conn = sqlite3.connect(self.path)
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results "
                "(cell_id TEXT PRIMARY KEY, record TEXT, written_at REAL DEFAULT 0)"
            )
            self._conn.commit()
        return self._conn

    @staticmethod
    def _is_foreign(conn: sqlite3.Connection) -> bool:
        """Whether an existing database holds someone else's tables (ours absent)."""
        tables = {
            row[0]
            for row in conn.execute("SELECT name FROM sqlite_master WHERE type = 'table'")
        }
        return bool(tables) and not {"meta", "results"}.issubset(tables)

    def _reset(self) -> None:
        """Preserve an unreadable database at ``<path>.corrupt`` and start fresh."""
        self.close()
        _move_aside(self.path)

    def _stored_namespace(self, conn: sqlite3.Connection) -> Optional[str]:
        row = conn.execute("SELECT value FROM meta WHERE key = 'namespace'").fetchone()
        return row[0] if row else None

    def _validated(self) -> Optional[sqlite3.Connection]:
        """A connection with the namespace checked, or ``None`` after recovery."""
        try:
            conn = self._connect()
            stored = self._stored_namespace(conn)
            if stored is not None and stored != self.namespace:
                conn.execute("DELETE FROM results")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)",
                    (self.namespace,),
                )
                conn.commit()
            return conn
        except sqlite3.DatabaseError:
            self._reset()
            return None

    def load(self) -> "OrderedDict[str, Dict[str, Any]]":
        self.load_errors = 0
        if not os.path.exists(self.path):
            return OrderedDict()
        conn = self._validated()
        if conn is None:
            return OrderedDict()
        try:
            rows = conn.execute(
                "SELECT cell_id, record FROM results ORDER BY rowid"
            ).fetchall()
        except sqlite3.DatabaseError:
            self._reset()
            return OrderedDict()
        records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        for cell_id, blob in rows:
            try:
                records[str(cell_id)] = dict(json.loads(blob))
            except (ValueError, TypeError):
                self.load_errors += 1
        return records

    def get(self, cell_id: str) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.path):
            return None
        conn = self._validated()
        if conn is None:
            return None
        try:
            row = conn.execute(
                "SELECT record FROM results WHERE cell_id = ?", (str(cell_id),)
            ).fetchone()
        except sqlite3.DatabaseError:
            return None
        if row is None:
            return None
        try:
            return dict(json.loads(row[0]))
        except (ValueError, TypeError):
            self.load_errors += 1
            return None

    def physical_rows(self) -> int:
        """Row count in the results table (keyed upserts never hold duplicates)."""
        if not os.path.exists(self.path):
            return 0
        conn = self._validated()
        if conn is None:
            return 0
        try:
            return int(conn.execute("SELECT COUNT(*) FROM results").fetchone()[0])
        except sqlite3.DatabaseError:
            return 0

    def put(self, cell_id: str, record: Dict[str, Any]) -> None:
        t0 = _obs.now() if _obs.enabled else 0.0
        conn = self._validated()
        if conn is None:
            conn = self._connect()
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
        )
        conn.execute(
            "INSERT OR REPLACE INTO results VALUES (?, ?, ?)",
            (str(cell_id), json.dumps(record), float(record.get("written_at") or 0.0)),
        )
        conn.commit()
        if _obs.enabled:
            _obs.add("store.put", t0, _obs.now(), tag=cell_id)

    def put_many(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> None:
        """One transaction for the whole batch (rows identical to per-put)."""
        if not items:
            return
        t0 = _obs.now() if _obs.enabled else 0.0
        conn = self._validated()
        if conn is None:
            conn = self._connect()
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
        )
        conn.executemany(
            "INSERT OR REPLACE INTO results VALUES (?, ?, ?)",
            [
                (str(cell_id), json.dumps(record), float(record.get("written_at") or 0.0))
                for cell_id, record in items
            ],
        )
        conn.commit()
        if _obs.enabled:
            _obs.add("store.put", t0, _obs.now(), tag=f"batch:{len(items)}")

    def replace_all(self, records: "OrderedDict[str, Dict[str, Any]]") -> None:
        conn = self._validated()
        if conn is None:
            conn = self._connect()
        conn.execute("DELETE FROM results")
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
        )
        conn.executemany(
            "INSERT OR REPLACE INTO results VALUES (?, ?, ?)",
            [
                (str(cell_id), json.dumps(record), float(record.get("written_at") or 0.0))
                for cell_id, record in records.items()
            ],
        )
        conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_result_store(
    path: Union[str, os.PathLike], namespace: Optional[str] = None
) -> ResultStore:
    """Pick a backend from the path suffix (sqlite for ``.sqlite/.db``, else JSONL)."""
    if str(path).lower().endswith(_SQLITE_SUFFIXES):
        return SqliteResultStore(str(path), namespace)
    return JsonlResultStore(str(path), namespace)


def open_store(
    path: Union[str, os.PathLike],
    kind: str = "cache",
    namespace: Optional[str] = None,
):
    """One dispatcher for both persistent store families.

    ``kind="cache"`` opens an evaluation-cache store
    (:func:`repro.core.evalcache.open_store`), ``kind="results"`` a sweep result
    store (:func:`open_result_store`).  The path-suffix rules are identical for
    both: ``.sqlite``/``.sqlite3``/``.db`` pick sqlite, anything else JSONL.  The
    historical per-family names remain as thin aliases.
    """
    if kind == "results":
        return open_result_store(path, namespace)
    if kind == "cache":
        from repro.core.evalcache import open_store as open_cache_store

        return open_cache_store(str(path), namespace)
    raise ValueError(f"kind must be 'cache' or 'results', not {kind!r}")


def merge_stores(
    paths: Sequence[Union[str, os.PathLike]],
    out_path: Union[str, os.PathLike],
) -> Dict[str, Any]:
    """Fold several result stores into one: the offline half of the sweep fabric.

    Hosts that swept air-gapped (or lost the coordinator and fell back to local
    ``--results`` files) each hold a partial store; this merges them keyed by
    ``cell_id`` with **later duplicates winning in argument order** — the same
    tiebreak every append-only store in the repo uses, so merging is associative
    with re-running.  Mixed backends are fine (``A.jsonl B.sqlite -o merged.sqlite``:
    the suffix rules of :func:`open_result_store` apply to every path).  Returns a
    summary: ``{"stores": n, "cells": n, "duplicates": n, "statuses": {...}}``.
    """
    if not paths:
        raise ValueError("merge needs at least one input store")
    merged: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    duplicates = 0
    for path in paths:
        store = open_result_store(path)
        try:
            for cell_id, record in store.load().items():
                if cell_id in merged:
                    duplicates += 1
                    merged.pop(cell_id)  # re-append so completion order stays honest
                merged[cell_id] = record
        finally:
            store.close()
    out = open_result_store(out_path)
    try:
        out.replace_all(merged)
    finally:
        out.close()
    statuses = Counter(record_status(record) for record in merged.values())
    return {
        "stores": len(paths),
        "cells": len(merged),
        "duplicates": duplicates,
        "statuses": dict(sorted(statuses.items())),
    }


def export_csv(store: ResultStore, handle: TextIO) -> int:
    """Write one CSV row per completed cell, metrics fanned out into columns.

    The column set is the union of every cell's metric keys (sorted), so
    heterogeneous matrices (scheduler cells next to GA cells) export cleanly;
    metrics a cell did not produce are left empty.  Returns the row count.
    """
    records = store.load()
    metric_keys = sorted(
        {
            key
            for record in records.values()
            for key in ((record.get("result") or {}).get("metrics") or {})
        }
    )
    writer = csv.writer(handle)
    writer.writerow(
        [
            "cell_id", "kind", "label", "plan", "oom", "status", "attempts",
            "error", "seconds", *metric_keys,
        ]
    )
    for cell_id, record in records.items():
        result = record.get("result") or {}
        metrics = result.get("metrics") or {}
        error = str(result.get("error") or "")
        writer.writerow(
            [
                cell_id,
                result.get("kind", ""),
                result.get("label", ""),
                result.get("plan", ""),
                result.get("oom", ""),
                result.get("status", "ok"),
                record.get("attempts", ""),
                # The last traceback line carries the exception; the full text
                # would bloat the sheet and wreck column widths in spreadsheets.
                error.strip().splitlines()[-1] if error.strip() else "",
                record.get("seconds", ""),
                *[metrics.get(key, "") for key in metric_keys],
            ]
        )
    return len(records)
