"""Declarative experiment descriptions (:class:`ExperimentSpec`).

A spec says *what* to run — the search kind, the workload, the wafer(s) and the
search hyper-parameters — and nothing about *how*: pools, caches and stores belong to
the :class:`~repro.api.Session` executing it.  Specs are plain dataclasses, loadable
from a dict or a JSON file, so the same experiment can be launched from Python, from
``python -m repro run``, or committed to a repo as a reviewable artifact.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.genetic import GAConfig
from repro.hardware.template import WaferConfig
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.parallelism.partition import TPSplitStrategy
from repro.workloads.workload import TrainingWorkload

__all__ = ["ExperimentSpec", "KINDS", "did_you_mean"]

#: The four search loops a spec can name.
KINDS = ("scheduler", "ga", "dse", "watos")


def did_you_mean(name: str, candidates: Iterable[str]) -> Optional[str]:
    """The closest real name to a probable typo, or ``None`` when nothing is close.

    Shared by every layer that resolves user-supplied names — spec fields, sweep
    knob paths, registry wafer/workload names — so a mistyped key fails with
    ``populatoin: unknown …; did you mean population?`` instead of a bare
    ``KeyError``.
    """
    matches = difflib.get_close_matches(str(name), list(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one search run, minus the runtime plumbing.

    ``kind`` selects the loop: ``"scheduler"`` (central scheduler §IV-A), ``"ga"``
    (scheduler seed + genetic refinement §IV-D), ``"dse"`` (die-granularity hardware
    DSE Fig. 25) or ``"watos"`` (the full wafer × workload co-exploration, Fig. 9).
    Wafers and workloads are references resolved through
    :mod:`repro.api.registry` — registered names, model-zoo names, mappings or
    ready config objects.
    """

    kind: str = "scheduler"
    #: Workload reference (name / mapping / TrainingWorkload).  ``watos`` accepts a
    #: list in :attr:`workloads` instead; a bare :attr:`workload` also works.
    workload: Union[str, Dict, TrainingWorkload, None] = None
    workloads: Optional[List[Union[str, Dict, TrainingWorkload]]] = None
    #: Wafer reference (name / WaferConfig).  ``watos`` accepts a list in
    #: :attr:`wafers`; ``dse`` builds its own wafers and ignores both.
    wafer: Union[str, WaferConfig, None] = None
    wafers: Optional[List[Union[str, WaferConfig]]] = None

    # ------------------------------------------------------------ scheduler knobs
    max_tp: int = 0
    split_strategies: Optional[Sequence[Union[str, TPSplitStrategy]]] = None
    collective: Union[str, CollectiveAlgorithm, None] = None

    # ------------------------------------------------------------ GA knobs
    population: int = 16
    generations: int = 30
    omega: float = 0.5
    mutation_rate: float = 0.7
    crossover_rate: float = 0.5
    seed: int = 0
    #: Whether the ``watos`` kind refines scheduler plans with the GA.
    use_ga: bool = True

    # ------------------------------------------------------------ DSE knobs
    areas_mm2: Sequence[float] = (200.0, 300.0, 400.0, 500.0, 600.0)
    aspect_ratios: Sequence[float] = (1.0, 1.6)

    # ------------------------------------------------------------ runtime hints
    #: Worker count to use when the executing session has no pool of its own
    #: (ephemeral; a session pool always wins).
    workers: Optional[int] = None
    #: Which loop level a ``watos`` run parallelises: ``"points"`` fans the
    #: wafer × workload product out, ``"inner"`` lends the pool to the nested loops.
    nest: str = "points"
    #: Free-form label carried into :class:`RunResult` and reports.
    name: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, not {self.kind!r}")
        if self.nest not in ("points", "inner"):
            raise ValueError(f"nest must be 'points' or 'inner', not {self.nest!r}")

    # ------------------------------------------------------------------ accessors
    def ga_config(self) -> GAConfig:
        return GAConfig(
            population_size=self.population,
            generations=self.generations,
            omega=self.omega,
            mutation_rate=self.mutation_rate,
            crossover_rate=self.crossover_rate,
            seed=self.seed,
        )

    def workload_refs(self) -> List[Union[str, Dict, TrainingWorkload]]:
        """The workload references this spec names (``workloads`` wins over ``workload``)."""
        if self.workloads:
            return list(self.workloads)
        if self.workload is not None:
            return [self.workload]
        raise ValueError(f"spec {self.name or self.kind!r} names no workload")

    def wafer_refs(self) -> List[Union[str, WaferConfig]]:
        if self.wafers:
            return list(self.wafers)
        if self.wafer is not None:
            return [self.wafer]
        raise ValueError(f"spec {self.name or self.kind!r} names no wafer")

    def resolved_collective(self) -> Optional[CollectiveAlgorithm]:
        if self.collective is None or isinstance(self.collective, CollectiveAlgorithm):
            return self.collective
        return CollectiveAlgorithm[str(self.collective).upper()]

    def resolved_split_strategies(self) -> Optional[Sequence[TPSplitStrategy]]:
        if self.split_strategies is None:
            return None
        return tuple(
            s if isinstance(s, TPSplitStrategy) else TPSplitStrategy[str(s).upper()]
            for s in self.split_strategies
        )

    # ------------------------------------------------------------------ codecs
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from a plain dict.

        Unknown keys land in :attr:`extras` — *except* when one is a near-miss of a
        real field (``populatoin``), which is almost certainly a typo that would
        otherwise silently configure nothing; those raise a ``ValueError`` naming
        the key and the suggested spelling.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        for key in data:
            if key not in known:
                hint = did_you_mean(key, known - {"extras"})
                if hint is not None:
                    raise ValueError(
                        f"{key}: unknown spec field; did you mean {hint}? "
                        "(genuinely custom keys belong under 'extras')"
                    )
        kwargs = {k: v for k, v in data.items() if k in known}
        extras = {k: v for k, v in data.items() if k not in known}
        if extras:
            kwargs.setdefault("extras", {}).update(extras)
        return cls(**kwargs)

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> List["ExperimentSpec"]:
        """Load one spec (JSON object) or several (JSON array) from a file."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, list):
            return [cls.from_dict(item) for item in data]
        return [cls.from_dict(data)]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict (object references are reduced to their names)."""

        def ref(value: Any) -> Any:
            if isinstance(value, WaferConfig):
                return value.name
            if isinstance(value, TrainingWorkload):
                return {
                    "model": value.model.name,
                    "global_batch_size": value.global_batch_size,
                    "micro_batch_size": value.micro_batch_size,
                    "sequence_length": value.seq_len,
                }
            if isinstance(value, (CollectiveAlgorithm, TPSplitStrategy)):
                return value.name.lower()
            return value

        data: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if f.name == "extras":
                continue
            value = getattr(self, f.name)
            if value is None or value == f.default:
                continue
            if isinstance(value, (list, tuple)):
                data[f.name] = [ref(v) for v in value]
            elif isinstance(value, dict) and f.name != "extras":
                data[f.name] = value
            else:
                data[f.name] = ref(value)
        if self.extras:
            data.update(self.extras)
        data["kind"] = self.kind
        return data
