"""Named wafers and workloads for declarative :class:`~repro.api.ExperimentSpec`s.

A spec loaded from JSON refers to hardware and workloads by *name*; this module is
the table those names resolve against.  It ships with the Table II wafer presets
(``config1`` … ``config4``), a ``tiny`` wafer/workload pair sized so a full
co-exploration completes in about a second (the CI smoke spec, and the same shapes
the throughput benchmarks have always used — the names and dataclasses are identical,
so evaluation fingerprints and persisted stores stay compatible), and every model in
the model zoo (``llama2-30b`` etc., with overridable batching).

``register_wafer`` / ``register_workload`` extend the table at runtime for custom
hardware or workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Union

from repro.hardware.configs import (
    wafer_config1,
    wafer_config2,
    wafer_config3,
    wafer_config4,
)
from repro.hardware.template import (
    ComputeDieConfig,
    CoreConfig,
    DieConfig,
    DramChipletConfig,
    WaferConfig,
)
from repro.units import GB, tbps, tflops
from repro.api.spec import did_you_mean
from repro.workloads.models import MODEL_ZOO, ModelConfig, ModelFamily, get_model
from repro.workloads.workload import TrainingWorkload

__all__ = [
    "register_wafer",
    "register_workload",
    "resolve_wafer",
    "resolve_workload",
    "tiny_wafer",
    "tiny_workload",
    "wafer_names",
    "workload_names",
]


# ---------------------------------------------------------------------- tiny presets
def tiny_wafer(dram_gb: float = 1.0) -> WaferConfig:
    """A small 4×4 wafer whose tight per-die DRAM forces recomputation/balancing."""
    compute = ComputeDieConfig(
        core_rows=8,
        core_cols=8,
        core=CoreConfig(flops_fp16=tflops(1.0)),
        width_mm=12.0,
        height_mm=12.0,
        edge_io_bandwidth=tbps(6.0),
    )
    chiplet = DramChipletConfig(
        capacity_bytes=dram_gb * GB / 4,
        bandwidth=tbps(1.0) / 4,
        interface_bandwidth=tbps(1.0) / 4,
        width_mm=3.0,
        height_mm=6.0,
    )
    die = DieConfig(
        compute=compute,
        dram_chiplet=chiplet,
        num_dram_chiplets=4,
        d2d_bandwidth=tbps(2.0),
    )
    return WaferConfig(
        name="bench-wafer",
        dies_x=4,
        dies_y=4,
        die=die,
        wafer_width_mm=100.0,
        wafer_height_mm=100.0,
    )


def tiny_model() -> ModelConfig:
    """A toy transformer whose heavy micro-batch makes checkpoints dominate memory."""
    return ModelConfig(
        name="bench-transformer",
        family=ModelFamily.TRANSFORMER,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        num_kv_heads=8,
        ffn_hidden=1408,
        vocab_size=8000,
        default_seq_len=512,
        gated_mlp=True,
    )


def tiny_workload() -> TrainingWorkload:
    return TrainingWorkload(
        tiny_model(), global_batch_size=32, micro_batch_size=8, sequence_length=2048
    )


# ------------------------------------------------------------------------- registries
_WAFERS: Dict[str, Callable[[], WaferConfig]] = {
    "config1": wafer_config1,
    "config2": wafer_config2,
    "config3": wafer_config3,
    "config4": wafer_config4,
    "tiny": tiny_wafer,
}

_WORKLOADS: Dict[str, Callable[[], TrainingWorkload]] = {
    "tiny": tiny_workload,
}

#: Batching applied when a workload is named by bare model-zoo name in a spec.
DEFAULT_BATCHING = {"global_batch_size": 128, "micro_batch_size": 4, "sequence_length": 4096}


def register_wafer(name: str, factory: Union[WaferConfig, Callable[[], WaferConfig]]) -> None:
    """Register a wafer under ``name`` (a config object or a zero-arg factory)."""
    _WAFERS[name] = factory if callable(factory) else (lambda config=factory: config)


def register_workload(
    name: str, factory: Union[TrainingWorkload, Callable[[], TrainingWorkload]]
) -> None:
    """Register a workload under ``name`` (an object or a zero-arg factory)."""
    _WORKLOADS[name] = factory if callable(factory) else (lambda workload=factory: workload)


def wafer_names() -> List[str]:
    return sorted(_WAFERS)


def workload_names() -> List[str]:
    """Registered workload names; model-zoo names resolve too (default batching)."""
    return sorted(set(_WORKLOADS) | set(MODEL_ZOO))


def resolve_wafer(wafer: Union[str, WaferConfig]) -> WaferConfig:
    """A spec's wafer reference → a :class:`WaferConfig` (names hit the registry)."""
    if isinstance(wafer, WaferConfig):
        return wafer
    factory = _WAFERS.get(str(wafer))
    if factory is None:
        hint = did_you_mean(str(wafer), wafer_names())
        suggestion = f" did you mean {hint}?" if hint else ""
        raise KeyError(
            f"unknown wafer {wafer!r};{suggestion} "
            f"registered: {', '.join(wafer_names())} (register_wafer adds more)"
        )
    return factory()


def resolve_workload(
    workload: Union[str, Mapping, TrainingWorkload],
) -> TrainingWorkload:
    """A spec's workload reference → a :class:`TrainingWorkload`.

    Accepts a ready workload, a registered name, a model-zoo name (with
    :data:`DEFAULT_BATCHING`), or a mapping ``{"model": name, "global_batch_size":
    …, "micro_batch_size": …, "sequence_length": …}``.
    """
    if isinstance(workload, TrainingWorkload):
        return workload
    if isinstance(workload, Mapping):
        spec = dict(workload)
        model_name = spec.pop("model", None)
        if model_name is None:
            raise KeyError("workload mapping needs a 'model' key")
        model = tiny_model() if model_name == "tiny" else get_model(model_name)
        batching = {**DEFAULT_BATCHING, **spec}
        return TrainingWorkload(
            model,
            global_batch_size=int(batching["global_batch_size"]),
            micro_batch_size=int(batching["micro_batch_size"]),
            sequence_length=int(batching["sequence_length"]),
        )
    name = str(workload)
    factory = _WORKLOADS.get(name)
    if factory is not None:
        return factory()
    if name in MODEL_ZOO:
        return resolve_workload({"model": name})
    hint = did_you_mean(name, workload_names())
    suggestion = f" did you mean {hint}?" if hint else ""
    raise KeyError(
        f"unknown workload {name!r};{suggestion} "
        f"registered: {', '.join(sorted(_WORKLOADS))}, "
        "plus any model-zoo name (default batching) or a "
        "{'model': …, 'global_batch_size': …} mapping"
    )
