"""Unified runtime API: one entry point for pools, caches and every search loop.

:class:`Session` owns the process worker pool, the shared (optionally persistent)
evaluation cache and the wafer/workload registry; :class:`ExperimentSpec` describes
what to run; ``Session.run(spec)`` returns a uniform :class:`RunResult`.  The
``python -m repro`` CLI (:mod:`repro.api.cli`) drives the same objects from the
shell.

>>> from repro.api import ExperimentSpec, Session
>>> with Session(pool=4, store="sweep.sqlite") as session:
...     run = session.run(ExperimentSpec(kind="ga", wafer="config3",
...                                      workload="llama2-30b"))
...     print(run.summary())
"""

from repro.api.registry import (
    register_wafer,
    register_workload,
    resolve_wafer,
    resolve_workload,
    tiny_wafer,
    tiny_workload,
)
from repro.api.result import RunResult
from repro.api.results import (
    ResultStore,
    export_csv,
    merge_stores,
    open_result_store,
    open_store,
)
from repro.api.session import (
    Session,
    SweepCellError,
    close_default_session,
    default_session,
)
from repro.api.spec import ExperimentSpec
from repro.api.sweep import ScheduleConfig, SweepCell, SweepSpec
from repro.core.parallel_map import PoolConfig, WorkerPool
from repro.core.retry import RetryPolicy

__all__ = [
    "ExperimentSpec",
    "PoolConfig",
    "ResultStore",
    "RetryPolicy",
    "RunResult",
    "ScheduleConfig",
    "Session",
    "SweepCell",
    "SweepCellError",
    "SweepSpec",
    "WorkerPool",
    "close_default_session",
    "default_session",
    "export_csv",
    "merge_stores",
    "open_result_store",
    "open_store",
    "register_wafer",
    "register_workload",
    "resolve_wafer",
    "resolve_workload",
    "tiny_wafer",
    "tiny_workload",
]
