"""Uniform result object returned by :meth:`repro.api.Session.run`.

Every search kind — scheduler, GA, DSE, Watos — produces the same shape: the best
plan (when the kind has one), its evaluation, a flat metrics dict, the session cache
counters for the run, and wall-clock timings.  Kind-specific payloads (exploration
records, GA outcome, DSE points, the full :class:`WatosResult`) ride along in
:attr:`details` for callers that want more than the summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.evaluator import EvaluationResult
from repro.core.plan import TrainingPlan

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """What one :meth:`Session.run` produced."""

    kind: str
    #: Best training plan found (``None`` for kinds without a single plan, or when
    #: everything was infeasible).
    plan: Optional[TrainingPlan] = None
    #: Evaluation of :attr:`plan` (same caveats).
    result: Optional[EvaluationResult] = None
    #: Flat, JSON-ready summary numbers (throughput, best_fitness, point counts…).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Session cache counters *after* the run (cumulative for the session).
    cache_stats: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds for the run.
    seconds: float = 0.0
    #: Kind-specific payload: exploration records, GAResult, DSE points, WatosResult.
    details: Any = None
    #: Label of the spec that produced this (``spec.name`` or the kind).
    label: str = ""
    #: Stable content-derived cell id when this run came out of a
    #: :class:`~repro.api.SweepSpec` matrix (empty for plain ``Session.run``).
    cell_id: str = ""
    #: ``"ok"`` for a completed run, ``"failed"`` for a quarantined sweep cell that
    #: exhausted its :class:`~repro.core.retry.RetryPolicy` (crashes, timeouts, or
    #: plain exceptions).  Failed cells are recorded, not raised, under the sweep's
    #: default keep-going semantics.
    status: str = "ok"
    #: Captured traceback text of the last failed attempt (empty on success).
    error: str = ""
    #: How many attempts this outcome took (1 on the crash-free path).  Volatile —
    #: a run that survived a worker crash still prices bit-identically, it just
    #: took more tries.
    attempts: int = 1
    #: Per-stage wall-clock seconds folded from the tracer (``repro.obs``) when the
    #: session ran with tracing enabled; counter events appear as event counts
    #: under ``#``-prefixed keys.  Empty when tracing was off.  Volatile — span
    #: timestamps are run-environment facts, never part of the stored result.
    timings: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        """Non-empty means the run actually produced something usable."""
        if self.status != "ok":
            return False
        return self.plan is not None or self.details is not None

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def throughput(self) -> float:
        if self.result is not None:
            return self.result.throughput
        return float(self.metrics.get("throughput", 0.0))

    def to_dict(self, volatile: bool = True) -> Dict[str, Any]:
        """A JSON-compatible summary (plans are reduced to their labels).

        ``volatile=False`` drops the two run-environment fields — wall-clock
        ``seconds`` and the session-cumulative ``cache_stats`` — leaving only what
        the (pure) search produced.  Result stores persist this deterministic form,
        which is what makes a resumed sweep byte-identical to a fresh one.
        """
        data: Dict[str, Any] = {
            "kind": self.kind,
            "label": self.label,
            "cell_id": self.cell_id,
            "plan": self.plan.label() if self.plan is not None else None,
            "oom": self.result.oom if self.result is not None else None,
            "status": self.status,
            "error": self.error,
            "metrics": dict(self.metrics),
        }
        if volatile:
            data["cache_stats"] = dict(self.cache_stats)
            data["seconds"] = self.seconds
            # Attempts are volatile on purpose: a cell that survived a worker
            # crash produced the same (pure) result, it just took more tries.
            data["attempts"] = self.attempts
            data["timings"] = dict(self.timings)
        return data

    def summary(self) -> str:
        """One human line for CLI output."""
        bits = [self.label or self.kind]
        if self.failed:
            reason = self.error.strip().splitlines()[-1] if self.error else "unknown error"
            bits.append(f"FAILED after {self.attempts} attempt(s): {reason}")
            bits.append(f"{self.seconds:.2f}s")
            return "  ".join(bits)
        if self.plan is not None:
            bits.append(self.plan.label())
        if self.result is not None:
            bits.append(f"{self.result.throughput / 1e12:.1f} TFLOPS")
        for key in ("best_fitness", "best_objective", "points", "records", "outcomes"):
            if key in self.metrics:
                value = self.metrics[key]
                formatted = f"{value:.4g}" if isinstance(value, float) else str(value)
                bits.append(f"{key}={formatted}")
        hit_rate = self.cache_stats.get("hit_rate")
        if hit_rate is not None:
            bits.append(f"hit_rate={hit_rate:.1%}")
        bits.append(f"{self.seconds:.2f}s")
        return "  ".join(bits)
