"""``python -m repro`` — run experiments and manage caches from the shell.

Three subcommands drive the :class:`~repro.api.Session` runtime:

* ``repro run`` — execute one experiment, from a JSON spec file or inline flags::

      python -m repro run --kind scheduler --wafer tiny --workload tiny --json -
      python -m repro run --spec experiment.json --workers 4 --store sweep.sqlite

* ``repro sweep`` — execute a JSON *array* of specs on one shared session (one
  pool, one warm cache)::

      python -m repro sweep --spec matrix.json --workers 8 --store sweep.sqlite

* ``repro cache`` — inspect and maintain persistent stores::

      python -m repro cache stats sweep.jsonl
      python -m repro cache compact sweep.jsonl --max-entries 50000 --max-age 604800

This replaces the per-script argparse plumbing the benchmark and example CLIs used
to re-assemble by hand; those scripts now build a session from the same helpers
(:func:`add_session_arguments` / :func:`session_from_args`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.api.registry import wafer_names, workload_names
from repro.api.session import Session
from repro.api.spec import KINDS, ExperimentSpec
from repro.core.evalcache import EvaluationCache, open_store

__all__ = [
    "add_session_arguments",
    "compact_store",
    "main",
    "session_from_args",
]


# ------------------------------------------------------------------ shared plumbing
def add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """The runtime flags every session-backed CLI shares."""
    parser.add_argument(
        "--workers", "--parallel", dest="workers", type=int, default=None,
        help="persistent worker-pool size shared by the whole run (-1 = all CPUs)",
    )
    parser.add_argument(
        "--store", "--cache", dest="store", metavar="PATH", default=None,
        help="persistent cache store (.jsonl or .sqlite); warm-starts when it exists",
    )
    parser.add_argument(
        "--read-through", action="store_true",
        help="sqlite stores only: answer misses from the file instead of preloading",
    )
    parser.add_argument(
        "--compact-on-exit", action="store_true",
        help="fold the store to one row per key when the session closes",
    )


def session_from_args(args: argparse.Namespace) -> Session:
    """Build the session a CLI run executes on (see :func:`add_session_arguments`)."""
    return Session(
        workers=args.workers,
        store=args.store,
        read_through=getattr(args, "read_through", False),
        compact_on_exit=getattr(args, "compact_on_exit", False),
    )


def _emit(payload: dict, json_out: Optional[str]) -> None:
    if json_out == "-":
        json.dump(payload, sys.stdout, indent=2)
        print()
    elif json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"metrics written to {json_out}")


# ------------------------------------------------------------------------- run/sweep
def _specs_from_args(args: argparse.Namespace) -> List[ExperimentSpec]:
    if args.spec:
        specs = ExperimentSpec.load(args.spec)
    else:
        if not args.wafer and args.kind != "dse":
            raise SystemExit(
                "repro run: name a wafer (--wafer) or a spec file (--spec); "
                f"registered wafers: {', '.join(wafer_names())}"
            )
        if not args.workload:
            raise SystemExit(
                "repro run: name a workload (--workload) or a spec file (--spec); "
                f"known workloads include: {', '.join(workload_names()[:8])}, …"
            )
        specs = [
            ExperimentSpec(
                kind=args.kind,
                wafer=args.wafer,
                workload=args.workload,
                max_tp=args.max_tp,
                population=args.population,
                generations=args.generations,
                seed=args.seed,
                nest=args.nest,
            )
        ]
    return specs


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _specs_from_args(args)
    with session_from_args(args) as session:
        results = session.sweep(specs)
    for run in results:
        print(run.summary())
    if len(results) == 1:
        _emit(results[0].to_dict(), args.json)
    else:
        _emit({"runs": [run.to_dict() for run in results]}, args.json)
    return 0 if all(results) else 1


# ------------------------------------------------------------------------------ cache
def compact_store(
    path: str,
    max_entries: Optional[int] = None,
    max_age_s: Optional[float] = None,
    namespace: Optional[str] = None,
) -> dict:
    """Compact a store in place; returns ``{"loaded": …, "kept": …}``.

    Shared by ``repro cache compact`` and ``scripts/compact_cache.py``.
    """
    store = open_store(path, namespace=namespace)
    cache = EvaluationCache(max_entries=None, store=store)
    loaded = cache.stats.loaded
    kept = cache.compact(max_entries=max_entries, max_age_s=max_age_s)
    cache.close()
    return {"loaded": loaded, "kept": kept, "evicted": max(0, loaded - kept)}


def _cmd_cache(args: argparse.Namespace) -> int:
    if not os.path.exists(args.store_path):
        print(f"no store at {args.store_path}", file=sys.stderr)
        return 1
    if args.cache_command == "compact":
        report = compact_store(
            args.store_path,
            max_entries=args.max_entries,
            max_age_s=args.max_age,
            namespace=args.namespace,
        )
        print(
            f"compacted {args.store_path}: {report['loaded']} live entries -> "
            f"{report['kept']} kept"
            + (f" ({report['evicted']} evicted)" if report["evicted"] else "")
        )
        return 0
    # stats
    store = open_store(args.store_path, namespace=args.namespace)
    entries = store.load()
    times = [t for t in store.row_times.values() if t > 0]
    payload = {
        "store": args.store_path,
        "entries": len(entries),
        "load_errors": store.load_errors,
        "oldest_priced_at": min(times) if times else None,
        "newest_priced_at": max(times) if times else None,
        "unstamped_rows": len(entries) - len(times),
    }
    store.close()
    print(json.dumps(payload, indent=2))
    return 0


# ------------------------------------------------------------------------------ main
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, several in (("run", False), ("sweep", True)):
        cmd = sub.add_parser(
            name,
            help=(
                "run a JSON array of specs on one shared session"
                if several
                else "run one experiment spec"
            ),
        )
        cmd.add_argument(
            "--spec", metavar="JSON",
            help="spec file (object%s)" % (" or array" if several else ""),
            required=several,
        )
        if not several:
            cmd.add_argument("--kind", choices=KINDS, default="scheduler")
            cmd.add_argument(
                "--wafer", default=None,
                help=f"wafer name ({', '.join(wafer_names())}) — dse builds its own",
            )
            cmd.add_argument(
                "--workload", default=None,
                help="workload name ('tiny' or any model-zoo model)",
            )
            cmd.add_argument("--max-tp", type=int, default=0)
            cmd.add_argument("--population", type=int, default=16, help="GA population")
            cmd.add_argument("--generations", type=int, default=30, help="GA generations")
            cmd.add_argument("--seed", type=int, default=0, help="GA RNG seed")
            cmd.add_argument(
                "--nest", choices=("points", "inner"), default="points",
                help="watos: which loop level the pool accelerates",
            )
        add_session_arguments(cmd)
        cmd.add_argument(
            "--json", metavar="OUT", default=None,
            help="write the RunResult summary as JSON ('-' for stdout)",
        )
        cmd.set_defaults(func=_cmd_run)

    cache = sub.add_parser("cache", help="inspect / compact persistent cache stores")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for cache_cmd in ("stats", "compact"):
        c = cache_sub.add_parser(cache_cmd)
        c.add_argument("store_path", help="path of the store (.jsonl, .sqlite, .db)")
        c.add_argument("--namespace", default=None,
                       help="override the fingerprint namespace")
        if cache_cmd == "compact":
            c.add_argument("--max-entries", type=int, default=None,
                           help="evict down to this many entries (newest kept)")
            c.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                           help="evict rows priced longer than this many seconds ago")
        c.set_defaults(func=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
