"""``python -m repro`` — run experiments, sweep matrices and manage stores.

Four subcommands drive the :class:`~repro.api.Session` runtime:

* ``repro run`` — execute one experiment, from a JSON spec file or inline flags
  (``--spec -`` reads the JSON from stdin)::

      python -m repro run --kind scheduler --wafer tiny --workload tiny --json -
      python -m repro run --spec experiment.json --workers 4 --store sweep.sqlite

* ``repro sweep`` — expand a :class:`~repro.api.SweepSpec` matrix (``base`` /
  ``grid`` / ``zip`` / ``seeds``; a plain JSON array of specs still works) and
  stream it on one shared session.  With ``--results`` every completed cell is
  written through to a result store and a re-invocation resumes where the last
  one stopped::

      python -m repro sweep --spec matrix.json --workers 8 --results out.sqlite
      generate_matrix.py | python -m repro sweep --spec - --results out.sqlite

* ``repro serve`` — run the distributed-sweep coordinator: it owns the
  authoritative result/cache stores and a leased cell queue that any number of
  ``repro sweep --store host:port/ns`` hosts drain together::

      python -m repro serve ./fabric-store --bind 0.0.0.0:7077
      python -m repro sweep --spec matrix.json --store coordinator-host:7077

* ``repro results`` — query (or merge) result stores::

      python -m repro results stats out.sqlite
      python -m repro results tail out.sqlite -n 5
      python -m repro results export out.sqlite --csv matrix.csv
      python -m repro results merge hostA.jsonl hostB.sqlite -o merged.sqlite

* ``repro cache`` — inspect and maintain persistent evaluation-cache stores::

      python -m repro cache stats sweep.jsonl
      python -m repro cache compact sweep.jsonl --max-entries 50000 --max-age 604800

* ``repro profile`` — summarise the span trace a ``--trace`` run wrote: per-stage
  wall-clock breakdown (pricing, cache sync, dispatch, store I/O — worker spans
  merged in) plus an ASCII waterfall of the run::

      python -m repro sweep --spec matrix.json --trace run.jsonl --results out.jsonl
      python -m repro profile run.jsonl

This replaces the per-script argparse plumbing the benchmark and example CLIs used
to re-assemble by hand; those scripts now build a session from the same helpers
(:func:`add_session_arguments` / :func:`session_from_args`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, List, Optional

from repro.api.registry import wafer_names, workload_names
from repro.api.results import export_csv, merge_stores, open_result_store, record_status
from repro.api.session import Session, SweepCellError
from repro.api.spec import KINDS, ExperimentSpec
from repro.api.sweep import SweepSpec
from repro.core.evalcache import EvaluationCache, open_store
from repro.core.retry import RetryPolicy
from repro.fabric.protocol import FabricError, parse_endpoint

__all__ = [
    "add_session_arguments",
    "compact_store",
    "main",
    "session_from_args",
]


# ------------------------------------------------------------------ shared plumbing
def add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """The runtime flags every session-backed CLI shares."""
    parser.add_argument(
        "--workers", "--parallel", dest="workers", type=int, default=None,
        help="persistent worker-pool size shared by the whole run (-1 = all CPUs)",
    )
    parser.add_argument(
        "--store", "--cache", dest="store", metavar="PATH", default=None,
        help="persistent cache store (.jsonl or .sqlite); warm-starts when it "
             "exists.  host:port[/namespace] instead connects to a `repro serve` "
             "coordinator, which then owns the stores and the sweep queue",
    )
    parser.add_argument(
        "--read-through", action="store_true",
        help="sqlite stores only: answer misses from the file instead of preloading",
    )
    parser.add_argument(
        "--compact-on-exit", action="store_true",
        help="fold the store to one row per key when the session closes",
    )
    parser.add_argument(
        "--trace", metavar="OUT", default=None,
        help="write a span trace (JSONL) of the run for `repro profile`",
    )


def session_from_args(args: argparse.Namespace) -> Session:
    """Build the session a CLI run executes on (see :func:`add_session_arguments`)."""
    try:
        return Session(
            pool=args.workers,
            store=args.store,
            read_through=getattr(args, "read_through", False),
            compact_on_exit=getattr(args, "compact_on_exit", False),
            trace=getattr(args, "trace", None),
        )
    except ValueError as exc:
        # Bad --store endpoints (malformed port, conflicting namespace) and other
        # argument mistakes already carry actionable messages; present them as CLI
        # errors, not tracebacks.
        raise SystemExit(f"repro: {exc}") from exc


def _emit(payload: dict, json_out: Optional[str]) -> None:
    if json_out == "-":
        json.dump(payload, sys.stdout, indent=2)
        print()
    elif json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"metrics written to {json_out}")


# ------------------------------------------------------------------------- run/sweep
def _load_spec_payload(spec_arg: str) -> Any:
    """The parsed JSON of ``--spec`` (``-`` reads stdin, so matrices pipe in)."""
    if spec_arg == "-":
        return json.load(sys.stdin)
    with open(spec_arg, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _specs_from_args(args: argparse.Namespace) -> List[ExperimentSpec]:
    if args.spec:
        payload = _load_spec_payload(args.spec)
        if isinstance(payload, list):
            specs = [ExperimentSpec.from_dict(item) for item in payload]
        else:
            specs = [ExperimentSpec.from_dict(payload)]
    else:
        if not args.wafer and args.kind != "dse":
            raise SystemExit(
                "repro run: name a wafer (--wafer) or a spec file (--spec); "
                f"registered wafers: {', '.join(wafer_names())}"
            )
        if not args.workload:
            raise SystemExit(
                "repro run: name a workload (--workload) or a spec file (--spec); "
                f"known workloads include: {', '.join(workload_names()[:8])}, …"
            )
        specs = [
            ExperimentSpec(
                kind=args.kind,
                wafer=args.wafer,
                workload=args.workload,
                max_tp=args.max_tp,
                population=args.population,
                generations=args.generations,
                seed=args.seed,
                nest=args.nest,
            )
        ]
    return specs


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _specs_from_args(args)
    with session_from_args(args) as session:
        results = [session.run(spec) for spec in specs]
    for run in results:
        print(run.summary())
    if len(results) == 1:
        _emit(results[0].to_dict(), args.json)
    else:
        _emit({"runs": [run.to_dict() for run in results]}, args.json)
    return 0 if all(results) else 1


def _retry_from_args(args: argparse.Namespace) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=args.retries,
        backoff_s=args.retry_backoff,
        timeout_s=args.cell_timeout,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = SweepSpec.from_payload(_load_spec_payload(args.spec))
    cells = sweep.expand()
    store = open_result_store(args.results) if args.results else None
    done_before = (
        set(store.completed_ids(include_failed=args.skip_failed))
        if (store is not None and not args.no_resume)
        else set()
    )
    skipped = sum(1 for cell in cells if cell.cell_id in done_before)
    # Keep only the JSON-sized summaries: a RunResult drags its full `details`
    # payload along, and a streamed matrix must not accumulate those in memory.
    ran: List[Any] = []
    failed = 0
    all_ok = True
    try:
        with session_from_args(args) as session:
            stream = session.sweep(
                sweep,
                results=store,
                resume=not args.no_resume,
                completed=done_before,  # already read above; skip a second load
                retry=_retry_from_args(args),
                keep_going=not args.fail_fast,
                skip_failed=args.skip_failed,
                jobs=args.jobs,
            )
            if args.max_cells is None or args.max_cells > 0:
                for run in stream:
                    print(run.summary())
                    all_ok = all_ok and bool(run)
                    if run.failed:
                        failed += 1
                    ran.append(run.to_dict())
                    if args.max_cells is not None and len(ran) >= args.max_cells:
                        stream.close()
                        break
    except SweepCellError as exc:
        # --fail-fast: the poison cell was already recorded in the store (so a
        # resume knows), but the matrix stops here instead of quarantining on.
        print(f"sweep aborted: {exc}", file=sys.stderr)
        failed += 1
        all_ok = False
    finally:
        if store is not None:
            if args.no_resume:
                # A forced re-run appended fresh rows over the old ones; fold the
                # store back to one row per cell so its size stays bounded.
                report = store.compact()
                folded = report["before"] - report["after"]
                if folded:
                    print(
                        f"compacted {args.results}: {report['before']} rows -> "
                        f"{report['after']} ({folded} duplicate rows folded)"
                    )
            store.close()
    pending = len(cells) - skipped - len(ran)
    print(
        f"sweep: {len(cells)} cells — {len(ran)} run, {failed} failed, "
        f"{skipped} already complete, {pending} pending"
        + (f" (results in {args.results})" if args.results else "")
    )
    _emit(
        {
            "cells": len(cells),
            "skipped": skipped,
            "pending": pending,
            "failed": failed,
            "results": args.results,
            "runs": ran,
        },
        args.json,
    )
    return 0 if all_ok else 1


# ------------------------------------------------------------------------------ serve
def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the distributed-sweep coordinator until interrupted.

    Prints the *resolved* address once serving — ``--bind 127.0.0.1:0`` picks a free
    port, and scripts (the fabric smoke test included) parse it from this line.
    """
    from repro.fabric.server import FabricCoordinator

    try:
        endpoint = parse_endpoint(args.bind)
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}") from exc
    namespace = args.namespace or endpoint.namespace
    coordinator = FabricCoordinator(
        args.store_dir,
        namespace=namespace,
        lease_s=args.lease_s,
        default_max_attempts=args.retries,
    )
    address = coordinator.start(endpoint.address)
    print(
        f"repro serve: namespace '{namespace}' on {address} "
        f"(store {args.store_dir}, lease {args.lease_s:g}s)",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


# ------------------------------------------------------------------------------ trace
_STORM_KEYS = (
    "wafer", "at", "duration", "die_rate", "link_rate", "degraded", "dead_share",
    "repair_s",
)


def _parse_storm(text: str):
    """One ``--storm`` value: comma-separated ``key=value`` pairs (see ``--help``)."""
    from repro.online.trace import StormSpec

    values: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise SystemExit(
                f"repro trace gen: bad --storm field {part!r}; expected key=value "
                f"pairs from: {', '.join(_STORM_KEYS)}"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in _STORM_KEYS:
            raise SystemExit(
                f"repro trace gen: unknown --storm key {key!r}; "
                f"known: {', '.join(_STORM_KEYS)}"
            )
        values[key] = value.strip()
    try:
        return StormSpec(
            wafer=int(values.get("wafer", 0)),
            at=float(values.get("at", 0.0)),
            duration=float(values.get("duration", 10.0)),
            die_fault_rate=float(values.get("die_rate", 0.2)),
            link_fault_rate=float(values.get("link_rate", 0.0)),
            degraded_fraction=float(values.get("degraded", 0.5)),
            dead_share=float(values.get("dead_share", 0.2)),
            mean_repair_s=float(values.get("repair_s", 0.0)),
        )
    except ValueError as exc:
        raise SystemExit(f"repro trace gen: bad --storm {text!r}: {exc}") from exc


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    from repro.online.trace import generate_trace, write_trace

    if ":" in args.iterations:
        lo, _, hi = args.iterations.partition(":")
        iterations = (int(lo), int(hi))
    else:
        iterations = int(args.iterations)
    try:
        trace = generate_trace(
            jobs=args.jobs,
            rate=args.rate,
            seed=args.seed,
            arrival=args.arrival,
            workloads=args.workload or ["tiny"],
            iterations=iterations,
            deadline_s=args.deadline,
            fleet=args.fleet or ["tiny"],
            storms=[_parse_storm(text) for text in (args.storm or [])],
            period_s=args.period,
            name=args.name or os.path.splitext(os.path.basename(args.out))[0],
        )
    except ValueError as exc:
        raise SystemExit(f"repro trace gen: {exc}") from exc
    events = write_trace(trace, args.out)
    faults = events - args.jobs
    print(
        f"wrote {args.out}: {args.jobs} arrivals + {faults} fault events "
        f"over {trace.horizon:.1f}s  (fleet {', '.join(trace.fleet)}; "
        f"fingerprint {trace.fingerprint})"
    )
    return 0


def _cmd_serve_trace(args: argparse.Namespace) -> int:
    from repro.online.trace import read_trace

    try:
        trace = read_trace(args.trace_path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro serve-trace: {exc}") from exc
    try:
        with session_from_args(args) as session:
            report = session.serve(
                trace,
                fleet=args.fleet or None,
                policy=args.policy,
                results=args.results,
                resume=not args.no_resume,
                flush_every=args.flush_every,
                max_tp=args.max_tp,
            )
    except ValueError as exc:
        raise SystemExit(f"repro serve-trace: {exc}") from exc
    print(report.summary_line())
    _emit(report.to_dict(), args.json)
    return 0 if report.failed == 0 else 1


# ---------------------------------------------------------------------------- results
def _cmd_results_merge(args: argparse.Namespace) -> int:
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print(f"repro results merge: no store at {', '.join(missing)}", file=sys.stderr)
        return 1
    summary = merge_stores(args.paths, args.out)
    statuses = summary["statuses"] or {"ok": 0}
    histogram = ", ".join(f"{status}={count}" for status, count in sorted(statuses.items()))
    print(
        f"merged {summary['stores']} stores -> {args.out}: {summary['cells']} cells "
        f"({summary['duplicates']} duplicates folded, later wins)  [{histogram}]"
    )
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    if not os.path.exists(args.results_path):
        print(f"no result store at {args.results_path}", file=sys.stderr)
        return 1
    store = open_result_store(args.results_path)
    try:
        if args.results_command == "stats":
            print(json.dumps(store.stats(), indent=2))
        elif args.results_command == "tail":
            for cell_id, record in store.tail(
                args.lines, status=args.status, kind=args.kind
            ):
                result = record.get("result") or {}
                metrics = result.get("metrics") or {}
                bits = [cell_id, result.get("kind", "?"), result.get("label") or "-"]
                if record_status(record) != "ok":
                    error = str(result.get("error") or "").strip()
                    reason = error.splitlines()[-1] if error else "unknown error"
                    bits.append(f"FAILED: {reason}")
                for key in ("throughput", "best_fitness", "best_objective", "points",
                            "records", "wait_s", "latency_s", "slo_miss", "util"):
                    if key in metrics:
                        value = metrics[key]
                        formatted = f"{value:.4g}" if isinstance(value, float) else str(value)
                        bits.append(f"{key}={formatted}")
                seconds = record.get("seconds")
                if seconds is not None:
                    bits.append(f"{seconds:.2f}s")
                print("  ".join(bits))
        elif args.results_command == "compact":
            report = store.compact()
            folded = report["before"] - report["after"]
            print(
                f"compacted {args.results_path}: {report['before']} rows -> "
                f"{report['after']} ({report['cells']} cells, "
                f"{folded} duplicate rows folded)"
            )
        else:  # export
            if args.csv == "-":
                rows = export_csv(store, sys.stdout)
            else:
                with open(args.csv, "w", encoding="utf-8", newline="") as handle:
                    rows = export_csv(store, handle)
                print(f"{rows} cells exported to {args.csv}")
    finally:
        store.close()
    return 0


# ---------------------------------------------------------------------------- profile
def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.report import aggregate, render_table, render_waterfall
    from repro.obs.tracefile import read_trace

    try:
        header, spans = read_trace(args.trace_path)
    except OSError as exc:
        raise SystemExit(f"repro profile: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"repro profile: {args.trace_path}: {exc}") from exc
    agg = aggregate(spans)
    meta = {
        key: header[key]
        for key in ("fingerprint", "cells")
        if key in header
    }
    print(render_table(agg, meta=meta))
    if not args.no_waterfall:
        print()
        print(render_waterfall(spans, width=args.width, max_rows=args.rows))
    _emit({"trace": args.trace_path, "header": header, **agg}, args.json)
    return 0


# ------------------------------------------------------------------------------ cache
def compact_store(
    path: str,
    max_entries: Optional[int] = None,
    max_age_s: Optional[float] = None,
    namespace: Optional[str] = None,
) -> dict:
    """Compact a store in place; returns ``{"loaded": …, "kept": …}``.

    Shared by ``repro cache compact`` and ``scripts/compact_cache.py``.
    """
    store = open_store(path, namespace=namespace)
    cache = EvaluationCache(max_entries=None, store=store)
    loaded = cache.stats.loaded
    kept = cache.compact(max_entries=max_entries, max_age_s=max_age_s)
    cache.close()
    return {"loaded": loaded, "kept": kept, "evicted": max(0, loaded - kept)}


def _cmd_cache(args: argparse.Namespace) -> int:
    if not os.path.exists(args.store_path):
        print(f"no store at {args.store_path}", file=sys.stderr)
        return 1
    if args.cache_command == "compact":
        report = compact_store(
            args.store_path,
            max_entries=args.max_entries,
            max_age_s=args.max_age,
            namespace=args.namespace,
        )
        print(
            f"compacted {args.store_path}: {report['loaded']} live entries -> "
            f"{report['kept']} kept"
            + (f" ({report['evicted']} evicted)" if report["evicted"] else "")
        )
        return 0
    # stats
    store = open_store(args.store_path, namespace=args.namespace)
    entries = store.load()
    times = [t for t in store.row_times.values() if t > 0]
    payload = {
        "store": args.store_path,
        "entries": len(entries),
        "load_errors": store.load_errors,
        "oldest_priced_at": min(times) if times else None,
        "newest_priced_at": max(times) if times else None,
        "unstamped_rows": len(entries) - len(times),
    }
    store.close()
    print(json.dumps(payload, indent=2))
    return 0


# ------------------------------------------------------------------------------ main
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment spec")
    run.add_argument(
        "--spec", metavar="JSON", default=None,
        help="spec file, object or array ('-' reads stdin)",
    )
    run.add_argument("--kind", choices=KINDS, default="scheduler")
    run.add_argument(
        "--wafer", default=None,
        help=f"wafer name ({', '.join(wafer_names())}) — dse builds its own",
    )
    run.add_argument(
        "--workload", default=None,
        help="workload name ('tiny' or any model-zoo model)",
    )
    run.add_argument("--max-tp", type=int, default=0)
    run.add_argument("--population", type=int, default=16, help="GA population")
    run.add_argument("--generations", type=int, default=30, help="GA generations")
    run.add_argument("--seed", type=int, default=0, help="GA RNG seed")
    run.add_argument(
        "--nest", choices=("points", "inner"), default="points",
        help="watos: which loop level the pool accelerates",
    )
    add_session_arguments(run)
    run.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the RunResult summary as JSON ('-' for stdout)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="expand a SweepSpec matrix (base/grid/zip/seeds — or a plain spec "
             "array) and stream it on one shared session",
    )
    sweep.add_argument(
        "--spec", metavar="JSON", required=True,
        help="SweepSpec object or spec array ('-' reads stdin)",
    )
    sweep.add_argument(
        "--results", metavar="PATH", default=None,
        help="result store (.jsonl or .sqlite): write each cell through as it "
             "completes; a re-invocation skips cells already present",
    )
    sweep.add_argument(
        "--no-resume", action="store_true",
        help="re-run every cell even when the result store already holds it",
    )
    sweep.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after running N fresh cells (resume later to finish)",
    )
    sweep.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per cell before it is quarantined as failed (default 3)",
    )
    sweep.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
        help="base backoff between attempts (doubles each retry, jittered "
             "deterministically; default 0)",
    )
    sweep.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per attempt; stragglers are killed and retried",
    )
    sweep.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first quarantined cell instead of the "
             "default keep-going quarantine",
    )
    sweep.add_argument(
        "--skip-failed", action="store_true",
        help="on resume, leave previously failed cells alone instead of "
             "re-attempting them",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run up to N whole cells concurrently (two-level scheduling over "
             "the shared pool); results and resume are identical to --jobs 1",
    )
    add_session_arguments(sweep)
    sweep.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the sweep summary as JSON ('-' for stdout)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the distributed-sweep coordinator: authoritative stores plus a "
             "leased cell queue that Session(store='host:port/ns') hosts drain",
    )
    serve.add_argument(
        "store_dir",
        help="directory owning the authoritative stores (results.jsonl, "
             "cache.jsonl, leases.jsonl); created if missing",
    )
    serve.add_argument(
        "--bind", metavar="HOST:PORT", default="127.0.0.1:0",
        help="listen address; port 0 picks a free port (printed once serving)",
    )
    serve.add_argument(
        "--namespace", default=None,
        help="namespace served (default 'default'); connecting hosts must match",
    )
    serve.add_argument(
        "--lease-s", type=float, default=10.0, metavar="SECONDS",
        help="heartbeat window: a host silent this long has its cells requeued",
    )
    serve.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="fallback global attempt budget per cell when a host's registration "
             "does not carry one (default 3)",
    )
    serve.set_defaults(func=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="generate replayable online-serving traces (JSONL request streams)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser(
        "gen", help="generate a seeded synthetic trace (arrivals + fault storms)"
    )
    gen.add_argument("--out", metavar="PATH", required=True,
                     help="trace file to write (JSONL)")
    gen.add_argument("--jobs", type=int, default=50, help="arrival count (default 50)")
    gen.add_argument("--rate", type=float, default=1.0,
                     help="mean arrival rate in jobs/s (default 1)")
    gen.add_argument("--seed", type=int, default=0, help="generator seed")
    gen.add_argument("--arrival", choices=("poisson", "diurnal"), default="poisson",
                     help="arrival process (diurnal = sinusoidally modulated rate)")
    gen.add_argument("--period", type=float, default=60.0, metavar="SECONDS",
                     help="diurnal modulation period (default 60)")
    gen.add_argument("--workload", action="append", default=None, metavar="NAME",
                     help="workload(s) jobs draw from, repeatable (default tiny)")
    gen.add_argument("--iterations", default="1", metavar="N|LO:HI",
                     help="iterations per job: a count, or an inclusive range")
    gen.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="per-job SLO, jittered ±25%% (default: no deadlines)")
    gen.add_argument("--fleet", action="append", default=None, metavar="WAFER",
                     help="fleet wafer name, repeatable (default one 'tiny')")
    gen.add_argument(
        "--storm", action="append", default=None, metavar="SPEC",
        help="fault storm as key=value pairs, repeatable: "
             "wafer=0,at=5,duration=10,die_rate=0.2,link_rate=0,degraded=0.5,"
             "dead_share=0.2,repair_s=0",
    )
    gen.add_argument("--name", default=None, help="trace display name (default: file stem)")
    gen.set_defaults(func=_cmd_trace_gen)

    serve_trace = sub.add_parser(
        "serve-trace",
        help="serve a trace online: stream its jobs onto a wafer fleet under a "
             "virtual clock, queueing metrics written to a result store",
    )
    serve_trace.add_argument("trace_path", help="trace file (repro trace gen writes them)")
    serve_trace.add_argument(
        "--policy", choices=("fcfs", "edf", "affinity"), default="fcfs",
        help="placement policy (default fcfs)",
    )
    serve_trace.add_argument(
        "--fleet", action="append", default=None, metavar="WAFER",
        help="override the trace's fleet, repeatable",
    )
    serve_trace.add_argument(
        "--results", metavar="PATH", default=None,
        help="result store (.jsonl or .sqlite): one row per job plus a fleet "
             "summary row; re-serving the same scenario resumes",
    )
    serve_trace.add_argument(
        "--no-resume", action="store_true",
        help="rewrite rows even when the result store already holds them",
    )
    serve_trace.add_argument(
        "--flush-every", type=int, default=1, metavar="N",
        help="batch N rows per store write (default 1 = write-through)",
    )
    serve_trace.add_argument("--max-tp", type=int, default=0)
    add_session_arguments(serve_trace)
    serve_trace.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the serve report as JSON ('-' for stdout)",
    )
    serve_trace.set_defaults(func=_cmd_serve_trace)

    results = sub.add_parser("results", help="query sweep result stores")
    results_sub = results.add_subparsers(dest="results_command", required=True)
    merge = results_sub.add_parser(
        "merge",
        help="fold several stores into one (dedupe by cell_id, later wins) — the "
             "offline fallback when hosts swept without a coordinator",
    )
    merge.add_argument(
        "paths", nargs="+", metavar="STORE",
        help="input stores, any mix of .jsonl and .sqlite; later arguments win "
             "duplicate cell_ids",
    )
    merge.add_argument(
        "-o", "--out", required=True, metavar="OUT",
        help="merged store to write (.jsonl or .sqlite; replaced atomically)",
    )
    merge.set_defaults(func=_cmd_results_merge)
    for results_cmd, help_text in (
        ("stats", "cell count, per-kind histogram, time range"),
        ("tail", "the last completed cells, one line each"),
        ("export", "one CSV row per cell with metrics columns"),
        ("compact", "fold duplicate rows in place (dedupe by cell_id, later wins)"),
    ):
        r = results_sub.add_parser(results_cmd, help=help_text)
        r.add_argument("results_path", help="path of the store (.jsonl, .sqlite, .db)")
        if results_cmd == "tail":
            r.add_argument("-n", "--lines", type=int, default=10,
                           help="how many trailing cells to show")
            r.add_argument("--status", default=None, metavar="STATUS",
                           help="only show cells with this status (e.g. failed)")
            r.add_argument("--kind", default=None, metavar="KIND",
                           help="only show cells of this result kind "
                                "(e.g. trace for online-serving job rows)")
        if results_cmd == "export":
            r.add_argument("--csv", metavar="OUT", required=True,
                           help="CSV output path ('-' for stdout)")
        r.set_defaults(func=_cmd_results)

    profile = sub.add_parser(
        "profile",
        help="summarise a span trace (--trace writes them): per-stage breakdown "
             "table plus an ASCII waterfall of the run",
    )
    profile.add_argument("trace_path", help="trace file a --trace run wrote (JSONL)")
    profile.add_argument(
        "--width", type=int, default=64, metavar="COLS",
        help="waterfall bar width in columns (default 64)",
    )
    profile.add_argument(
        "--rows", type=int, default=32, metavar="N",
        help="waterfall row budget; longest spans kept when over (default 32)",
    )
    profile.add_argument(
        "--no-waterfall", action="store_true",
        help="print only the stage breakdown table",
    )
    profile.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the aggregated profile as JSON ('-' for stdout)",
    )
    profile.set_defaults(func=_cmd_profile)

    cache = sub.add_parser("cache", help="inspect / compact persistent cache stores")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for cache_cmd in ("stats", "compact"):
        c = cache_sub.add_parser(cache_cmd)
        c.add_argument("store_path", help="path of the store (.jsonl, .sqlite, .db)")
        c.add_argument("--namespace", default=None,
                       help="override the fingerprint namespace")
        if cache_cmd == "compact":
            c.add_argument("--max-entries", type=int, default=None,
                           help="evict down to this many entries (newest kept)")
            c.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                           help="evict rows priced longer than this many seconds ago")
        c.set_defaults(func=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FabricError as exc:
        # Unreachable coordinator, lost connection, namespace/version mismatch —
        # all carry actionable messages (including the offline merge fallback).
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Streaming output into a closed pager/head is a normal way to stop; exit
        # quietly instead of tracebacking (stdout is gone, so swap in devnull).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
