"""Microsecond observability: ring-buffer tracepoints, span logs, profile reports.

The subsystem is three small, stdlib-only modules:

* :mod:`repro.obs.tracer` — the process-local ring-buffer :class:`Tracer`, the
  module-level ``enabled`` fast flag, and the ``span()``/``count()``/``add()``
  instrumentation API used across core/api/fabric/online.
* :mod:`repro.obs.tracefile` — the versioned JSONL span log written by
  ``Session(trace=...)`` / ``repro sweep --trace`` and read by ``repro profile``.
* :mod:`repro.obs.report` — post-hoc aggregation: per-stage tables,
  ``RunResult.timings`` fold-ins and the ASCII flame/waterfall view.

Hot call sites import :mod:`repro.obs.tracer` directly (``from repro.obs import
tracer as obs``) so the ``obs.enabled`` guard is a single module-attribute read.
"""

from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    Tracer,
    absorb,
    add,
    as_dicts,
    count,
    current,
    disable,
    drain,
    enable,
    is_enabled,
    mark,
    now,
    records,
    reset_in_worker,
    span,
)
from repro.obs.tracefile import TRACE_FORMAT, TRACE_VERSION, read_trace, write_trace
from repro.obs.report import aggregate, fold_timings, render_table, render_waterfall

__all__ = [
    "DEFAULT_CAPACITY",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "absorb",
    "add",
    "aggregate",
    "as_dicts",
    "count",
    "current",
    "disable",
    "drain",
    "enable",
    "fold_timings",
    "is_enabled",
    "mark",
    "now",
    "read_trace",
    "records",
    "render_table",
    "render_waterfall",
    "reset_in_worker",
    "span",
    "write_trace",
]
