"""Process-local ring-buffer tracer: microsecond span records at near-zero cost.

The design follows the ``radical.utils`` ``profile.py``/``timing.py`` idiom — a
preallocated ring of flat records stamped with a monotonic clock, aggregated
post-hoc — adapted to this codebase's fork-based worker pool:

* **Module-level fast flag.**  Hot paths guard on ``tracer.enabled`` (one module
  attribute read) and pay nothing else while tracing is off.  ``span()`` returns a
  shared no-op context manager when disabled, so ``with span("store.put"):`` is
  safe to leave inline at warm (non-innermost) call sites.  The innermost sites
  (``Evaluator.evaluate``, ``EvaluationCache.get``) use the manual
  ``if tracer.enabled: t0 = tracer.now() ... tracer.add(...)`` form instead, which
  skips the context-manager machinery entirely.
* **Preallocated flat ring.**  Record fields are written into individual slots
  of one flat preallocated list (9 slots per record) rather than as tuples: the
  hot path then allocates no GC-tracked container at all (floats and strings
  are untracked), so heavy tracing neither triggers extra gen-0 collections nor
  grows the set the collector has to scan — which costs more than the writes
  themselves on allocation-heavy workloads.  The slot index comes from
  ``itertools.count`` (atomic under the GIL), so concurrent threads — the
  two-level scheduler runs cells on threads — never block each other on a lock.
  When the ring wraps, the oldest records are overwritten and reported as
  ``dropped``.  Readers materialise 9-tuples on the (cold) way out.
* **Worker merge.**  Forked pool workers inherit the parent's flag, clear their
  ring via :func:`reset_in_worker`, and ship their records back through the
  result-pipe carry path (see ``parallel_map``); the parent absorbs them in
  worker-slot order so merged timelines are deterministic.

Record layout (index → field)::

    0 kind     "S" span | "C" counter
    1 name     stage name ("pricing", "dispatch", "store.put", ...)
    2 t_start  time.perf_counter() at entry (CLOCK_MONOTONIC: one epoch
    3 t_end    time.perf_counter() at exit   across forked processes on Linux)
    4 tag      free-form context (cell_id, fabric op, ...)
    5 pid      os.getpid() of the recording process
    6 worker   pool worker index, or None in the parent/session process
    7 depth    span nesting depth in the recording thread
    8 value    counter increment (1.0 for spans)

This module depends only on the standard library so every layer of the package
(core, api, fabric, online) can import it without cycles.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

Record = Tuple[str, str, float, float, str, int, Optional[int], int, float]

DEFAULT_CAPACITY = 65536

FIELDS = ("kind", "name", "t_start", "t_end", "tag", "pid", "worker", "depth", "value")

#: Module-level fast flag. Hot paths read this attribute directly; everything else
#: goes through enable()/disable().
enabled = False

_TRACER: Optional["Tracer"] = None
_WORKER: Optional[int] = None


def now() -> float:
    """The tracer clock: ``time.perf_counter()`` (monotonic, sub-microsecond)."""
    return time.perf_counter()


class Tracer:
    """A fixed-capacity ring of span/counter records for one process."""

    __slots__ = ("capacity", "pid", "worker", "_ring", "_next", "_n", "_drained", "_local")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, worker: Optional[int] = None):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.pid = os.getpid()
        self.worker = worker
        # One flat list, 9 slots per record: slot writes of floats/strings create
        # no GC-tracked objects, unlike appending one 9-tuple per record.
        self._ring: List[Any] = [None] * (self.capacity * 9)
        self._next = itertools.count()
        self._n = 0  # total records ever written (monotone watermark)
        self._drained = 0
        self._local = threading.local()

    # -- writing ---------------------------------------------------------------

    def add_span(self, name: str, t_start: float, t_end: float, tag: str = "", depth: int = 0) -> None:
        index = next(self._next)  # atomic under the GIL: no lock on the hot path
        ring = self._ring
        base = (index % self.capacity) * 9
        ring[base] = "S"
        ring[base + 1] = name
        ring[base + 2] = t_start
        ring[base + 3] = t_end
        ring[base + 4] = tag
        ring[base + 5] = self.pid
        ring[base + 6] = self.worker
        ring[base + 7] = depth
        ring[base + 8] = 1.0
        self._n = index + 1

    def add_count(self, name: str, value: float = 1.0, tag: str = "") -> None:
        stamp = time.perf_counter()
        index = next(self._next)
        ring = self._ring
        base = (index % self.capacity) * 9
        ring[base] = "C"
        ring[base + 1] = name
        ring[base + 2] = stamp
        ring[base + 3] = stamp
        ring[base + 4] = tag
        ring[base + 5] = self.pid
        ring[base + 6] = self.worker
        ring[base + 7] = 0
        ring[base + 8] = value
        self._n = index + 1

    def absorb(self, records: Iterable[Record]) -> None:
        """Append records produced elsewhere (a worker's drained ring), verbatim."""
        ring = self._ring
        for record in records:
            index = next(self._next)
            base = (index % self.capacity) * 9
            ring[base : base + 9] = record
            self._n = index + 1

    # -- span nesting (per recording thread) -----------------------------------

    def _enter_depth(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit_depth(self, depth: int) -> None:
        self._local.depth = depth

    # -- reading ---------------------------------------------------------------

    def mark(self) -> int:
        """Watermark for :meth:`records` — the count of records written so far."""
        return self._n

    def records(self, since: int = 0) -> List[Record]:
        """Records written at or after watermark ``since`` that still live in the ring."""
        end = self._n
        start = max(since, end - self.capacity, 0)
        ring = self._ring
        out: List[Record] = []
        for index in range(start, end):
            base = (index % self.capacity) * 9
            if ring[base] is not None:
                out.append(tuple(ring[base : base + 9]))
        return out

    def dropped(self, since: int = 0) -> int:
        """How many records after ``since`` were overwritten before being read."""
        end = self._n
        if end <= since:
            return 0
        return max(0, (end - since) - self.capacity)

    def drain(self) -> List[Record]:
        """Records written since the previous drain (worker → carry shipping)."""
        records = self.records(self._drained)
        self._drained = self._n
        return records


class _SpanContext:
    """Context manager recording one span on exit (entry-time nesting depth)."""

    __slots__ = ("_tracer", "_name", "_tag", "_t0", "_depth")

    def __init__(self, tracer: Tracer, name: str, tag: str):
        self._tracer = tracer
        self._name = name
        self._tag = tag

    def __enter__(self) -> "_SpanContext":
        self._depth = self._tracer._enter_depth()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        t1 = time.perf_counter()
        self._tracer._exit_depth(self._depth)
        self._tracer.add_span(self._name, self._t0, t1, self._tag, self._depth)
        return False


class _NoopSpan:
    """Shared do-nothing context manager returned by span() while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


# -- module-level API (what instrumentation sites call) ----------------------------


def enable(capacity: Optional[int] = None, worker: Optional[int] = None) -> Tracer:
    """Turn tracing on, creating the process tracer on first use.

    Idempotent: re-enabling keeps the existing ring (and its records) unless a
    different ``capacity`` is requested.  ``worker`` stamps subsequent records
    with a pool worker index (parent processes leave it ``None``).
    """
    global enabled, _TRACER, _WORKER
    if worker is not None:
        _WORKER = worker
    if _TRACER is None or (capacity is not None and _TRACER.capacity != capacity):
        _TRACER = Tracer(capacity or DEFAULT_CAPACITY, worker=_WORKER)
    else:
        _TRACER.worker = _WORKER
    enabled = True
    return _TRACER


def disable() -> None:
    """Turn tracing off. The ring is kept so already-recorded spans stay readable."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled


def current() -> Optional[Tracer]:
    return _TRACER


def reset_in_worker(worker: int) -> None:
    """Reset inherited tracer state in a freshly forked pool worker.

    The fork copies the parent's ring; the worker must not re-ship the parent's
    records, so it gets a fresh ring stamped with its own pid/worker index.  The
    ``enabled`` flag is kept as inherited — the pool keeps it in sync with the
    parent through the map message protocol.
    """
    global _TRACER, _WORKER
    _WORKER = worker
    if _TRACER is not None:
        _TRACER = Tracer(_TRACER.capacity, worker=worker)


def span(name: str, tag: str = ""):
    """Nestable span context manager; a shared no-op while tracing is disabled."""
    if not enabled or _TRACER is None:
        return _NOOP
    return _SpanContext(_TRACER, name, tag)


def add(name: str, t_start: float, t_end: float, tag: str = "") -> None:
    """Record a span from explicit timestamps (the manual hot-path form)."""
    if enabled and _TRACER is not None:
        _TRACER.add_span(name, t_start, t_end, tag)


def count(name: str, value: float = 1.0, tag: str = "") -> None:
    """Record a counter event (cache hit/miss, preemption, ...)."""
    if enabled and _TRACER is not None:
        _TRACER.add_count(name, value, tag)


def mark() -> int:
    return _TRACER.mark() if _TRACER is not None else 0


def records(since: int = 0) -> List[Record]:
    return _TRACER.records(since) if _TRACER is not None else []


def drain() -> List[Record]:
    return _TRACER.drain() if _TRACER is not None else []


def absorb(record_list: Iterable[Record]) -> None:
    if _TRACER is not None:
        _TRACER.absorb(record_list)


def as_dicts(record_list: Sequence[Any]) -> List[Dict[str, Any]]:
    """Normalise ring tuples (or already-decoded dicts) to full-key span dicts."""
    out: List[Dict[str, Any]] = []
    for record in record_list:
        if isinstance(record, dict):
            out.append({field: record.get(field) for field in FIELDS})
        else:
            out.append(dict(zip(FIELDS, record)))
    return out
