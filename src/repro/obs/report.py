"""Post-hoc aggregation of span records: stage tables, fold-ins, waterfall view.

Everything here consumes the normalised span dicts produced by
:func:`repro.obs.tracer.as_dicts` / :func:`repro.obs.tracefile.read_trace`, so
it works identically on a live ring snapshot and on a trace file read back from
disk.  This is the rendering half of ``repro profile``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import tracer


def _spans(records: Sequence[Any]) -> List[Dict[str, Any]]:
    return tracer.as_dicts(records)


def fold_timings(records: Sequence[Any]) -> Dict[str, float]:
    """Per-stage wall-clock seconds (span durations summed by name).

    This is what lands in ``RunResult.timings`` — volatile diagnostics, excluded
    from fingerprints and stored (deterministic) result rows.  Counter events are
    folded as event counts under a ``#``-prefixed key so the two units cannot be
    confused (``{"pricing": 0.41, "#cache.hit": 388.0}``).
    """
    totals: Dict[str, float] = {}
    for span in _spans(records):
        if span.get("kind") == "S":
            duration = float(span.get("t_end") or 0.0) - float(span.get("t_start") or 0.0)
            name = str(span.get("name"))
            totals[name] = totals.get(name, 0.0) + max(duration, 0.0)
        elif span.get("kind") == "C":
            key = "#" + str(span.get("name"))
            totals[key] = totals.get(key, 0.0) + float(span.get("value") or 0.0)
    return {name: round(value, 9) for name, value in sorted(totals.items())}


def aggregate(records: Sequence[Any]) -> Dict[str, Any]:
    """Stage/counter statistics plus the overall wall-clock extent of the trace."""
    spans = _spans(records)
    stages: Dict[str, Dict[str, Any]] = {}
    counters: Dict[str, Dict[str, float]] = {}
    t_min = math.inf
    t_max = -math.inf
    for span in spans:
        t0 = float(span.get("t_start") or 0.0)
        t1 = float(span.get("t_end") or 0.0)
        t_min = min(t_min, t0)
        t_max = max(t_max, t1)
        name = str(span.get("name"))
        if span.get("kind") == "S":
            stage = stages.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "workers": set()}
            )
            duration = max(t1 - t0, 0.0)
            stage["count"] += 1
            stage["total_s"] += duration
            stage["max_s"] = max(stage["max_s"], duration)
            stage["workers"].add(span.get("worker"))
        elif span.get("kind") == "C":
            counter = counters.setdefault(name, {"count": 0.0, "total": 0.0})
            counter["count"] += 1
            counter["total"] += float(span.get("value") or 0.0)
    wall_s = (t_max - t_min) if spans else 0.0
    for stage in stages.values():
        stage["mean_s"] = stage["total_s"] / stage["count"] if stage["count"] else 0.0
        workers = stage.pop("workers")
        stage["processes"] = len(workers)
        stage["from_workers"] = any(worker is not None for worker in workers)
    return {"wall_s": max(wall_s, 0.0), "spans": len(spans), "stages": stages, "counters": counters}


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


def render_table(agg: Dict[str, Any], meta: Optional[Dict[str, Any]] = None) -> str:
    """The per-stage breakdown table ``repro profile`` prints."""
    lines: List[str] = []
    if meta:
        parts = [f"{key}={meta[key]}" for key in sorted(meta) if key not in ("format", "version")]
        if parts:
            lines.append("trace: " + "  ".join(parts))
    wall = agg["wall_s"]
    lines.append(f"wall-clock {wall:.3f} s over {agg['spans']} records")
    lines.append("")
    lines.append(f"{'stage':<24} {'count':>7} {'total':>11} {'mean':>11} {'share':>7}")
    lines.append("-" * 64)
    stages = sorted(agg["stages"].items(), key=lambda item: item[1]["total_s"], reverse=True)
    for name, stage in stages:
        share = (stage["total_s"] / wall * 100.0) if wall > 0 else 0.0
        marker = "*" if stage["from_workers"] else " "
        lines.append(
            f"{name:<24} {stage['count']:>7} {_fmt_seconds(stage['total_s']):>11}"
            f" {_fmt_seconds(stage['mean_s']):>11} {share:>6.1f}%{marker}"
        )
    if not stages:
        lines.append("(no spans)")
    if any(stage["from_workers"] for _, stage in stages):
        lines.append("  * includes spans merged from pool workers")
    if agg["counters"]:
        lines.append("")
        lines.append(f"{'counter':<24} {'events':>7} {'total':>11}")
        lines.append("-" * 44)
        for name, counter in sorted(
            agg["counters"].items(), key=lambda item: item[1]["total"], reverse=True
        ):
            lines.append(f"{name:<24} {int(counter['count']):>7} {counter['total']:>11.0f}")
    return "\n".join(lines)


def render_waterfall(records: Sequence[Any], width: int = 64, max_rows: int = 32) -> str:
    """ASCII flame/waterfall: one bar per span on the shared monotonic time axis.

    Rows are chronological; nesting depth indents the stage name (the flame
    axis), and the lane column says which process recorded the span (``main`` or
    ``w<idx>`` for pool workers).  When the trace holds more spans than
    ``max_rows``, the longest ones are kept so the picture stays dominated by
    where the time actually went.
    """
    spans = [span for span in _spans(records) if span.get("kind") == "S"]
    if not spans:
        return "(no spans to draw)"
    t_min = min(float(span["t_start"]) for span in spans)
    t_max = max(float(span["t_end"]) for span in spans)
    scale = max(t_max - t_min, 1e-9)
    rows = sorted(spans, key=lambda span: (float(span["t_start"]), float(span["t_end"])))
    dropped = 0
    if len(rows) > max_rows:
        dropped = len(rows) - max_rows
        rows = sorted(rows, key=lambda s: float(s["t_end"]) - float(s["t_start"]), reverse=True)
        rows = sorted(rows[:max_rows], key=lambda s: (float(s["t_start"]), float(s["t_end"])))
    lines = [f"{'lane':>5} {'span':<26} |{'time →':<{width}}| duration"]
    for span in rows:
        t0 = float(span["t_start"])
        t1 = float(span["t_end"])
        lo = int((t0 - t_min) / scale * width)
        hi = max(lo + 1, int(math.ceil((t1 - t_min) / scale * width)))
        hi = min(hi, width)
        lo = min(lo, hi - 1)
        bar = "." * lo + "#" * (hi - lo) + "." * (width - hi)
        worker = span.get("worker")
        lane = "main" if worker is None else f"w{worker}"
        depth = int(span.get("depth") or 0)
        name = ("  " * depth + str(span.get("name")))[:26]
        lines.append(f"{lane:>5} {name:<26} |{bar}| {_fmt_seconds(t1 - t0).strip()}")
    if dropped:
        lines.append(f"({dropped} shorter span(s) not drawn; --rows raises the limit)")
    return "\n".join(lines)
