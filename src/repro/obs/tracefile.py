"""Versioned JSONL span log: what ``Session(trace=...)`` writes, ``repro profile`` reads.

File layout mirrors the result-store discipline (``repro.api.results``): a single
JSON header line identifying the format and schema version, then one compact JSON
object per record.  Records use short keys to keep big traces small::

    {"format": "watos-trace-spans", "version": 1, "fingerprint": "…", "cells": 4}
    {"k": "S", "n": "pricing", "b": 12.001, "e": 12.034, "g": "", "p": 71, "w": 0, "d": 0, "v": 1.0}

The reader tolerates a torn final line (a crash mid-write) by skipping it, the
same recovery rule the result store uses, so ``repro profile`` still works on a
trace from an interrupted run.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracer

TRACE_FORMAT = "watos-trace-spans"
TRACE_VERSION = 1

# full field name <-> compact on-disk key (same order as tracer.FIELDS)
_SHORT_KEYS = ("k", "n", "b", "e", "g", "p", "w", "d", "v")
_TO_SHORT = dict(zip(tracer.FIELDS, _SHORT_KEYS))
_TO_LONG = dict(zip(_SHORT_KEYS, tracer.FIELDS))


def write_trace(
    path: str,
    records: Sequence[Any],
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a span log (header + one line per record); returns the record count.

    ``records`` may be raw tracer ring tuples or span dicts.  ``meta`` is folded
    into the header line (e.g. the sweep fingerprint, which is stable across a
    resume of the same matrix).  The file is replaced atomically so a torn write
    never corrupts an existing trace.
    """
    spans = tracer.as_dicts(records)
    header: Dict[str, Any] = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
    for key, value in (meta or {}).items():
        if key not in ("format", "version"):
            header[key] = value
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for span in spans:
            row = {_TO_SHORT[field]: span.get(field) for field in tracer.FIELDS}
            handle.write(json.dumps(row) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return len(spans)


def read_trace(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a span log; returns ``(header, spans)`` with full-key span dicts.

    Raises :class:`ValueError` on a missing/foreign header or an unknown schema
    version.  A torn final line (no trailing record after a crash) is skipped;
    torn lines elsewhere are skipped too rather than failing the whole report.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except ValueError:
        header = None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} file (wrote it with --trace?)")
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"{path}: trace schema version {header.get('version')!r} "
            f"(this build reads version {TRACE_VERSION})"
        )
    spans: List[Dict[str, Any]] = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue  # torn line (tail of an interrupted write): skip, keep the rest
        if isinstance(row, dict):
            spans.append({_TO_LONG.get(key, key): value for key, value in row.items()})
    return header, spans
