"""Interconnect substrate: topologies, routing and collective-communication cost models."""

from repro.interconnect.alphabeta import AlphaBetaLink, transfer_time
from repro.interconnect.topology import (
    MeshTopology,
    MeshSwitchTopology,
    MultiWaferTopology,
)
from repro.interconnect.routing import xy_path, manhattan_hops, LinkLoadTracker
from repro.interconnect.collectives import CollectiveModel, CollectiveAlgorithm

__all__ = [
    "AlphaBetaLink",
    "transfer_time",
    "MeshTopology",
    "MeshSwitchTopology",
    "MultiWaferTopology",
    "xy_path",
    "manhattan_hops",
    "LinkLoadTracker",
    "CollectiveModel",
    "CollectiveAlgorithm",
]
