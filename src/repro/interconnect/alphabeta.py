"""The alpha–beta communication model (Eq. 1 of the paper).

A point-to-point transfer of ``size`` bytes over a link costs::

    t = alpha + size / bandwidth

where ``alpha`` is the fixed per-message latency (link setup, routing, serialisation of
the first flit) and ``bandwidth`` the sustained link bandwidth.  Collective algorithms
are expressed as sequences of such transfers in :mod:`repro.interconnect.collectives`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AlphaBetaLink:
    """A single communication link characterised by latency and bandwidth."""

    bandwidth: float
    latency: float = 100e-9

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency cannot be negative")

    def transfer_time(self, size_bytes: float) -> float:
        """Time to move ``size_bytes`` over this link."""
        return transfer_time(size_bytes, self.bandwidth, self.latency)

    def degraded(self, quality: float) -> "AlphaBetaLink":
        """A copy of this link with only ``quality`` of its bandwidth remaining."""
        if not 0.0 < quality <= 1.0:
            raise ValueError("quality must be within (0, 1]")
        return AlphaBetaLink(bandwidth=self.bandwidth * quality, latency=self.latency)


def transfer_time(size_bytes: float, bandwidth: float, latency: float = 0.0) -> float:
    """alpha–beta cost of a single transfer."""
    if size_bytes < 0:
        raise ValueError("transfer size cannot be negative")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if size_bytes == 0:
        return 0.0
    return latency + size_bytes / bandwidth
