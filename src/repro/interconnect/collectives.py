"""Collective-communication cost models.

All collectives are expressed with the alpha–beta model of Eq. 1, specialised to the
ring/mesh algorithms the paper discusses:

* unidirectional and bidirectional ring all-reduce / all-gather / reduce-scatter,
* RingBiOdd (bidirectional ring supporting odd group sizes, §VI-B),
* a TACOS-like topology-aware collective that exploits both mesh dimensions,
* 2D tensor-parallel communication (GSPMD-style), which moves more data and therefore
  loses on a 2D mesh (the paper's Fig. 21 insight),
* all-to-all for MoE token routing and broadcast for Cerebras-style weight streaming.

The group is assumed to be placed contiguously on the mesh; ``links_per_step`` lets the
caller model how many mesh links the ring actually keeps busy, which is how the TP=8
link-underutilisation effect of Fig. 5b is captured.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.interconnect.alphabeta import AlphaBetaLink


class CollectiveAlgorithm(enum.Enum):
    """Which all-reduce implementation the TP engine uses."""

    RING = "ring"
    BIDIRECTIONAL_RING = "bidirectional_ring"
    RING_BI_ODD = "ring_bi_odd"
    TACOS = "tacos"
    TP_2D = "tp_2d"


@dataclass(frozen=True)
class CollectiveModel:
    """Cost model for collectives over a group of ``group_size`` dies on the mesh.

    Parameters
    ----------
    link:
        The per-hop D2D link (bandwidth already reflects any fault degradation).
    group_size:
        Number of dies participating in the collective.
    step_overhead:
        Fixed software/DMA cost paid on every ring step (chunk descriptor setup, router
        arbitration, synchronisation).  This is the term that makes very large TP groups
        pay for their long rings even when the bandwidth term has saturated — the effect
        behind the paper's "small TP wins on WSCs" insight.
    """

    link: AlphaBetaLink
    group_size: int
    step_overhead: float = 2e-6

    def __post_init__(self) -> None:
        if self.group_size <= 0:
            raise ValueError("collective group size must be positive")
        if self.step_overhead < 0:
            raise ValueError("step overhead cannot be negative")

    @property
    def _per_step(self) -> float:
        return self.link.latency + self.step_overhead

    # ------------------------------------------------------------------ ring family
    def ring_all_reduce(self, size_bytes: float, bidirectional: bool = False) -> float:
        """Ring all-reduce: 2(n-1)/n of the data crosses each link (Eq. 1's beta term)."""
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        effective_bw = self.link.bandwidth * (2.0 if bidirectional else 1.0)
        steps = 2 * (n - 1)
        volume = 2.0 * (n - 1) / n * size_bytes
        return steps * self._per_step + volume / effective_bw

    def ring_all_gather(self, size_bytes: float, bidirectional: bool = False) -> float:
        """All-gather of ``size_bytes`` total result."""
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        effective_bw = self.link.bandwidth * (2.0 if bidirectional else 1.0)
        steps = n - 1
        volume = (n - 1) / n * size_bytes
        return steps * self._per_step + volume / effective_bw

    def reduce_scatter(self, size_bytes: float, bidirectional: bool = False) -> float:
        """Reduce-scatter, the mirror image of all-gather."""
        return self.ring_all_gather(size_bytes, bidirectional=bidirectional)

    def ring_bi_odd(self, size_bytes: float) -> float:
        """Bidirectional ring generalised to odd group sizes (RingBiOdd).

        The odd ring cannot perfectly balance the two directions, costing roughly one
        extra chunk of serialisation relative to the even bidirectional ring.
        """
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        base = self.ring_all_reduce(size_bytes, bidirectional=True)
        if n % 2 == 0:
            return base
        imbalance = size_bytes / n / (self.link.bandwidth * 2.0)
        return base + imbalance + self._per_step

    def tacos(self, size_bytes: float) -> float:
        """TACOS-like topology-aware all-reduce.

        TACOS synthesises a collective schedule that exploits both mesh dimensions, so it
        behaves like a bidirectional ring whose startup (alpha) term grows only with the
        mesh diameter rather than the group size — it wins at large TP degrees but cannot
        beat the bandwidth lower bound.
        """
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        diameter = 2 * max(1, int(math.ceil(math.sqrt(n))) - 1)
        volume = 2.0 * (n - 1) / n * size_bytes
        return 2 * diameter * self._per_step + volume / (self.link.bandwidth * 2.0)

    # ------------------------------------------------------------------ other patterns
    def all_reduce(self, size_bytes: float, algorithm: CollectiveAlgorithm) -> float:
        """Dispatch to the selected all-reduce implementation."""
        if algorithm is CollectiveAlgorithm.RING:
            return self.ring_all_reduce(size_bytes)
        if algorithm is CollectiveAlgorithm.BIDIRECTIONAL_RING:
            return self.ring_all_reduce(size_bytes, bidirectional=True)
        if algorithm is CollectiveAlgorithm.RING_BI_ODD:
            return self.ring_bi_odd(size_bytes)
        if algorithm is CollectiveAlgorithm.TACOS:
            return self.tacos(size_bytes)
        if algorithm is CollectiveAlgorithm.TP_2D:
            return self.tp_2d_all_reduce(size_bytes)
        raise ValueError(f"unknown collective algorithm {algorithm!r}")

    def tp_2d_all_reduce(self, size_bytes: float) -> float:
        """2D tensor-parallel communication (GSPMD-style summa decomposition).

        2D TP replaces one all-reduce of the activation with row/column broadcasts and
        reductions whose combined volume is larger for LLM-shaped GEMMs; on a 2D mesh it
        also suffers tail latency from the longer of the two phases.  Modelled as two
        sequential collectives over the row and column sub-groups with ~1.5× volume.
        """
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        rows = max(1, int(math.sqrt(n)))
        cols = max(1, -(-n // rows))
        row_model = CollectiveModel(self.link, rows, self.step_overhead)
        col_model = CollectiveModel(self.link, cols, self.step_overhead)
        inflated = 1.5 * size_bytes
        return (
            row_model.ring_all_reduce(inflated / 2.0, bidirectional=True)
            + col_model.ring_all_reduce(inflated, bidirectional=True)
        )

    def all_to_all(self, size_bytes: float) -> float:
        """All-to-all exchange (MoE token routing): each die sends 1/n to every peer."""
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        per_peer = size_bytes / n
        # On a mesh the exchange contends for the bisection: traffic crossing the middle
        # of an n-die group serialises over roughly sqrt(n) links.
        contention = max(1.0, math.sqrt(n) / 2.0)
        steps = max(1, int(math.ceil(math.sqrt(n))))
        return steps * self._per_step + (n - 1) * per_peer * contention / self.link.bandwidth

    def broadcast(self, size_bytes: float) -> float:
        """Pipeline broadcast along the ring (used for Cerebras weight streaming)."""
        n = self.group_size
        if n == 1 or size_bytes == 0:
            return 0.0
        return (n - 1) * self._per_step + size_bytes / self.link.bandwidth

    # ------------------------------------------------------------------ mesh effects
    def ring_link_utilization(self, group_shape: tuple) -> float:
        """Fraction of mesh links inside the group's bounding box a ring actually uses.

        A ring embedded in an ``a × b`` sub-mesh keeps its perimeter links busy but leaves
        the interior links idle, which is the Fig. 5b observation that large TP groups
        under-utilise the mesh.
        """
        a, b = group_shape
        if a <= 0 or b <= 0:
            raise ValueError("group shape must be positive")
        if a * b == 1:
            return 1.0
        total_links = a * (b - 1) + b * (a - 1)
        if a == 1 or b == 1:
            ring_links = max(a, b) - 1
        else:
            ring_links = 2 * (a - 1) + 2 * (b - 1)
        return min(1.0, ring_links / total_links) if total_links else 1.0
