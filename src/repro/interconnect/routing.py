"""Routing on the 2D mesh: XY (dimension-ordered) paths, shortest paths on faulty meshes
and a link-load tracker used to detect contention between communication tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.interconnect.topology import MeshTopology

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


def _canonical(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


def manhattan_hops(src: Coord, dst: Coord) -> int:
    """Minimum hop count between two dies on a fault-free mesh."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


def xy_path(src: Coord, dst: Coord) -> List[Coord]:
    """Dimension-ordered (X then Y) route between two dies, inclusive of endpoints."""
    path = [src]
    x, y = src
    step = 1 if dst[0] >= x else -1
    while x != dst[0]:
        x += step
        path.append((x, y))
    step = 1 if dst[1] >= y else -1
    while y != dst[1]:
        y += step
        path.append((x, y))
    return path


def path_links(path: Sequence[Coord]) -> List[Link]:
    """The canonical links traversed by a node path."""
    return [_canonical((path[i], path[i + 1])) for i in range(len(path) - 1)]


def fault_aware_path(mesh: MeshTopology, src: Coord, dst: Coord) -> List[Coord]:
    """Shortest path that avoids failed dies/links, falling back to XY when healthy.

    If an endpoint itself has failed, or no healthy route exists, the XY route is
    returned as a last resort — the caller's degradation model (quality floors) then
    prices the traffic that must limp across the broken region.
    """
    if mesh.faults.is_empty:
        return xy_path(src, dst)
    graph = mesh.graph()
    if src not in graph or dst not in graph:
        return xy_path(src, dst)
    try:
        return nx.shortest_path(graph, src, dst, weight="weight")
    except nx.NetworkXNoPath:
        return xy_path(src, dst)


def all_shortest_paths(mesh: MeshTopology, src: Coord, dst: Coord, limit: int = 16) -> List[List[Coord]]:
    """Up to ``limit`` distinct shortest paths between two dies (used by Eq. 2)."""
    graph = mesh.graph()
    paths = []
    for path in nx.all_shortest_paths(graph, src, dst, weight="weight"):
        paths.append(path)
        if len(paths) >= limit:
            break
    return paths


@dataclass
class LinkLoadTracker:
    """Accumulates bytes routed over each mesh link and reports contention.

    The PP engine assigns communication tasks to paths in order of size, penalising paths
    whose links already carry traffic (§IV-E-2); this tracker is the bookkeeping that
    makes the penalty computable.
    """

    mesh: MeshTopology
    loads: Dict[Link, float] = field(default_factory=dict)

    def add_path(self, path: Sequence[Coord], size_bytes: float) -> None:
        if size_bytes < 0:
            raise ValueError("traffic size cannot be negative")
        for link in path_links(path):
            self.loads[link] = self.loads.get(link, 0.0) + size_bytes

    def load(self, link: Link) -> float:
        return self.loads.get(_canonical(link), 0.0)

    def conflicts(self, path: Sequence[Coord]) -> int:
        """Number of already-loaded links a path would traverse (the γ of Eq. 2)."""
        return sum(1 for link in path_links(path) if self.loads.get(link, 0.0) > 0.0)

    def max_link_load(self) -> float:
        return max(self.loads.values(), default=0.0)

    def total_traffic(self) -> float:
        return sum(self.loads.values())

    def busy_links(self) -> int:
        return sum(1 for load in self.loads.values() if load > 0.0)

    def utilization(self) -> float:
        """Fraction of mesh links carrying any traffic (Fig. 5b style metric)."""
        total_links = len(self.mesh.links())
        return self.busy_links() / total_links if total_links else 0.0

    def congestion_time(
        self, size_bytes: float, path: Sequence[Coord], min_quality: float = 0.0
    ) -> float:
        """Serialised transfer time for a path including queueing behind existing load.

        ``min_quality`` optionally floors the link quality so traffic forced across a
        failed link is priced as heavily degraded rather than rejected (used by the
        fault-tolerant PP engine); with the default of 0.0 a failed link raises.
        """
        if not path or len(path) == 1:
            return 0.0
        worst = 0.0
        for a, b in zip(path, path[1:]):
            quality = max(self.mesh.link_quality(a, b), min_quality)
            if quality <= 0.0:
                raise ValueError(f"path uses failed link {a}-{b}")
            bandwidth = self.mesh.link_bandwidth * quality
            queued = self.loads.get(_canonical((a, b)), 0.0)
            worst = max(worst, (queued + size_bytes) / bandwidth)
        hops = len(path) - 1
        return worst + hops * self.mesh.link_latency
