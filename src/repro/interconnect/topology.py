"""Interconnect topologies: the wafer 2D mesh, the mesh-switch variant and multi-wafer nodes.

The wafer-level interconnect is a 2D mesh of die-to-die links (Fig. 3).  The mesh-switch
topology of §VI-E arranges dies in small meshes that hang off a central switch network,
and the multi-wafer node of §VI-F connects several wafers with a lower-bandwidth
wafer-to-wafer fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.hardware.faults import FaultModel
from repro.hardware.template import WaferConfig
from repro.interconnect.alphabeta import AlphaBetaLink

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


def _canonical(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


@dataclass
class MeshTopology:
    """A ``dies_x`` × ``dies_y`` 2D mesh of dies with uniform D2D links."""

    dies_x: int
    dies_y: int
    link_bandwidth: float
    link_latency: float = 100e-9
    faults: FaultModel = field(default_factory=FaultModel)

    def __post_init__(self) -> None:
        if self.dies_x <= 0 or self.dies_y <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.link_bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")

    @classmethod
    def from_wafer(cls, wafer: WaferConfig, faults: Optional[FaultModel] = None) -> "MeshTopology":
        """Build the mesh described by a wafer configuration."""
        return cls(
            dies_x=wafer.dies_x,
            dies_y=wafer.dies_y,
            link_bandwidth=wafer.die.d2d_link_bandwidth,
            link_latency=wafer.die.d2d_latency,
            faults=faults or FaultModel(),
        )

    # ------------------------------------------------------------------ structure
    @property
    def num_dies(self) -> int:
        return self.dies_x * self.dies_y

    def dies(self) -> List[Coord]:
        return [(x, y) for y in range(self.dies_y) for x in range(self.dies_x)]

    def healthy_dies(self) -> List[Coord]:
        """Dies that are not completely failed."""
        return [d for d in self.dies() if self.faults.die_throughput(d) > 0.0]

    def contains(self, die: Coord) -> bool:
        x, y = die
        return 0 <= x < self.dies_x and 0 <= y < self.dies_y

    def neighbors(self, die: Coord) -> List[Coord]:
        x, y = die
        candidates = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        return [c for c in candidates if self.contains(c)]

    def links(self) -> List[Link]:
        out: List[Link] = []
        for x in range(self.dies_x):
            for y in range(self.dies_y):
                if x + 1 < self.dies_x:
                    out.append(((x, y), (x + 1, y)))
                if y + 1 < self.dies_y:
                    out.append(((x, y), (x, y + 1)))
        return out

    def link(self, a: Coord, b: Coord) -> AlphaBetaLink:
        """The (possibly degraded) link between two adjacent dies."""
        if b not in self.neighbors(a):
            raise ValueError(f"dies {a} and {b} are not adjacent")
        quality = self.faults.link_quality(_canonical((a, b)))
        if quality <= 0.0:
            raise ValueError(f"link {a}-{b} has failed")
        base = AlphaBetaLink(self.link_bandwidth, self.link_latency)
        return base if quality == 1.0 else base.degraded(quality)

    def link_quality(self, a: Coord, b: Coord) -> float:
        return self.faults.link_quality(_canonical((a, b)))

    def graph(self) -> nx.Graph:
        """A networkx view with dead dies/links removed and bandwidths as edge weights."""
        g = nx.Graph()
        for die in self.healthy_dies():
            g.add_node(die)
        for a, b in self.links():
            quality = self.faults.link_quality((a, b))
            if quality <= 0.0:
                continue
            if a in g and b in g:
                g.add_edge(a, b, bandwidth=self.link_bandwidth * quality,
                           latency=self.link_latency, weight=1.0)
        return g

    def bisection_bandwidth(self) -> float:
        """Bandwidth across the narrower mid-cut of the mesh."""
        cut_links = min(self.dies_x, self.dies_y)
        return cut_links * self.link_bandwidth


@dataclass
class MeshSwitchTopology:
    """Several small meshes attached to a central switch network (§VI-E, Fig. 23a).

    ``group_shape`` is the (x, y) shape of each local mesh; ``num_groups`` of them are
    connected through a switch of ``switch_bandwidth`` aggregate bandwidth.
    """

    num_groups: int
    group_shape: Tuple[int, int]
    link_bandwidth: float
    switch_bandwidth: float
    link_latency: float = 100e-9
    switch_latency: float = 300e-9

    def __post_init__(self) -> None:
        if self.num_groups <= 0:
            raise ValueError("need at least one mesh group")
        if self.switch_bandwidth <= 0:
            raise ValueError("switch bandwidth must be positive")

    @property
    def dies_per_group(self) -> int:
        return self.group_shape[0] * self.group_shape[1]

    @property
    def num_dies(self) -> int:
        return self.num_groups * self.dies_per_group

    def group_mesh(self) -> MeshTopology:
        """The local mesh inside one group."""
        return MeshTopology(
            dies_x=self.group_shape[0],
            dies_y=self.group_shape[1],
            link_bandwidth=self.link_bandwidth,
            link_latency=self.link_latency,
        )

    def switch_link(self) -> AlphaBetaLink:
        """Effective per-group link into the switch network."""
        return AlphaBetaLink(self.switch_bandwidth / self.num_groups, self.switch_latency)


@dataclass
class MultiWaferTopology:
    """A node of several wafers connected by wafer-to-wafer (W2W) links (§VI-F)."""

    num_wafers: int
    wafer: WaferConfig
    w2w_bandwidth: float
    w2w_latency: float = 1e-6

    def __post_init__(self) -> None:
        if self.num_wafers <= 0:
            raise ValueError("need at least one wafer")
        if self.w2w_bandwidth <= 0:
            raise ValueError("wafer-to-wafer bandwidth must be positive")

    @property
    def total_dies(self) -> int:
        return self.num_wafers * self.wafer.num_dies

    @property
    def total_flops(self) -> float:
        return self.num_wafers * self.wafer.total_flops

    @property
    def total_dram_capacity(self) -> float:
        return self.num_wafers * self.wafer.total_dram_capacity

    def wafer_mesh(self) -> MeshTopology:
        return MeshTopology.from_wafer(self.wafer)

    def w2w_link(self) -> AlphaBetaLink:
        return AlphaBetaLink(self.w2w_bandwidth, self.w2w_latency)
