"""Unit constants and small conversion helpers used across the package.

Conventions (documented in DESIGN.md):

* sizes are in **bytes**
* time is in **seconds**
* bandwidth is in **bytes per second**
* compute is in **FLOP per second** (FP16 unless stated otherwise)
* silicon area is in **mm²**
"""

KB = 1024
MB = 1024 ** 2
GB = 1024 ** 3
TB = 1024 ** 4

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

US = 1e-6
MS = 1e-3
NS = 1e-9

FP16_BYTES = 2
FP32_BYTES = 4

#: Adam keeps two FP32 moments plus an FP32 master copy of the weights when the model
#: itself is stored in FP16 (mixed-precision training, §V-A of the paper).
ADAM_STATE_BYTES_PER_PARAM = 3 * FP32_BYTES


def tflops(value: float) -> float:
    """Convert TFLOPS to FLOP/s."""
    return value * TERA


def gbps(value: float) -> float:
    """Convert GB/s to bytes/s (decimal gigabytes, matching vendor datasheets)."""
    return value * 1e9


def tbps(value: float) -> float:
    """Convert TB/s to bytes/s (decimal terabytes, matching vendor datasheets)."""
    return value * 1e12


def gib(value: float) -> float:
    """Convert GiB to bytes."""
    return value * GB


def mib(value: float) -> float:
    """Convert MiB to bytes."""
    return value * MB
