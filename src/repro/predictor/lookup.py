"""Operator-level performance lookup table (paper §IV-B and §IV-F).

WATOS profiles operators offline and stores latency / memory / DRAM-access results in a
table that the schedulers query "in a read-only manner with negligible overhead" during
exploration.  Here the table memoises predictor results keyed by the operator's shape
signature and the die configuration, which keeps the GA and the DP recomputation search
fast even though they evaluate thousands of candidate configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence, Tuple

from repro.hardware.template import DieConfig
from repro.workloads.operators import Operator


class OperatorPredictor(Protocol):
    """Anything that can predict operator latency and memory (analytical or DNN)."""

    def latency(self, op: Operator) -> float: ...

    def memory(self, op: Operator) -> float: ...


@dataclass(frozen=True)
class ProfileEntry:
    """One cached profiling result."""

    latency: float
    memory_bytes: float


def _operator_key(op: Operator) -> Tuple:
    return (
        op.name,
        op.kind.value,
        round(op.flops, 3),
        round(op.weight_bytes, 3),
        round(op.checkpoint_bytes, 3),
        round(op.output_bytes, 3),
    )


def _die_key(die: DieConfig) -> Tuple:
    return (
        die.flops_fp16,
        die.dram_bandwidth,
        die.dram_capacity,
        die.d2d_bandwidth,
    )


class OperatorProfileTable:
    """Memoising wrapper around an operator predictor."""

    def __init__(self, predictor: OperatorPredictor, die: DieConfig) -> None:
        self.predictor = predictor
        self.die = die
        self._table: Dict[Tuple, ProfileEntry] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, op: Operator) -> ProfileEntry:
        """Profile an operator, returning the cached entry when available."""
        key = (_die_key(self.die),) + _operator_key(op)
        entry = self._table.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        entry = ProfileEntry(
            latency=self.predictor.latency(op),
            memory_bytes=self.predictor.memory(op),
        )
        self._table[key] = entry
        return entry

    def lookup_many(self, ops: Sequence[Operator]) -> List[ProfileEntry]:
        """Profile a whole operator graph in one pass (the vectorized miss path).

        Cached operators are answered from the table; the remaining *unique* shapes are
        priced in one ``estimate_batch`` call when the predictor supports it (the
        analytical model's struct-of-arrays roofline), falling back to per-operator
        calls otherwise.  Counter semantics match a sequence of :meth:`lookup` calls:
        a shape appearing twice in one batch is one miss plus one hit.
        """
        die_key = _die_key(self.die)
        keys = [(die_key,) + _operator_key(op) for op in ops]
        entries: List[ProfileEntry] = [None] * len(ops)  # type: ignore[list-item]
        pending: Dict[Tuple, List[int]] = {}
        pending_ops: List[Operator] = []
        for index, (op, key) in enumerate(zip(ops, keys)):
            entry = self._table.get(key)
            if entry is not None:
                self.hits += 1
                entries[index] = entry
                continue
            slots = pending.get(key)
            if slots is None:
                self.misses += 1
                pending[key] = [index]
                pending_ops.append(op)
            else:
                # Same shape earlier in this batch: it will be priced by then.
                self.hits += 1
                slots.append(index)
        if pending_ops:
            estimate_batch = getattr(self.predictor, "estimate_batch", None)
            if estimate_batch is not None:
                priced = [
                    ProfileEntry(latency=e.latency, memory_bytes=e.memory_bytes)
                    for e in estimate_batch(pending_ops)
                ]
            else:
                priced = [
                    ProfileEntry(
                        latency=self.predictor.latency(op),
                        memory_bytes=self.predictor.memory(op),
                    )
                    for op in pending_ops
                ]
            for key, entry in zip(pending, priced):
                self._table[key] = entry
                for index in pending[key]:
                    entries[index] = entry
        return entries

    def latency(self, op: Operator) -> float:
        return self.lookup(op).latency

    def latencies(self, ops: Sequence[Operator]) -> List[float]:
        """Latency of every operator in ``ops`` via the batch lookup path."""
        return [entry.latency for entry in self.lookup_many(ops)]

    def memory(self, op: Operator) -> float:
        return self.lookup(op).memory_bytes

    def __len__(self) -> int:
        return len(self._table)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._table.clear()
        self.hits = 0
        self.misses = 0
