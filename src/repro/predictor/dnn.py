"""DNN-based operator latency/memory predictor (paper Fig. 10b).

The paper trains a small neural network, offline, on measured operator latencies and
memory footprints, because analytical models miss alignment overheads and multi-level
memory effects.  Offline we have no silicon to measure, so the "ground truth" generator
here is the analytical model **plus a deterministic perturbation model** of exactly those
effects (tile-quantisation of dimensions, SRAM spill penalties, DMA alignment padding).
The MLP is then trained on samples of that ground truth; the naive analytical model keeps
its systematic error while the MLP learns the perturbations away, reproducing the paper's
"DNN ≈ 2% error vs analytical ≈ 15–20%" comparison.  See DESIGN.md, substitution 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.hardware.template import DieConfig
from repro.predictor.analytical import AnalyticalPredictor
from repro.workloads.operators import Operator, OperatorKind


class MlpRegressor:
    """A small fully connected regressor (one hidden layer, tanh) trained with Adam.

    Implemented directly on numpy — no deep-learning framework is available offline and
    none is needed for a two-layer network on a few thousand samples.
    """

    def __init__(self, input_dim: int, hidden_dim: int = 32, seed: int = 0) -> None:
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = np.random.default_rng(seed)
        scale1 = math.sqrt(2.0 / input_dim)
        scale2 = math.sqrt(2.0 / hidden_dim)
        self.w1 = rng.normal(0.0, scale1, size=(input_dim, hidden_dim))
        self.b1 = np.zeros(hidden_dim)
        self.w2 = rng.normal(0.0, scale2, size=(hidden_dim, 1))
        self.b2 = np.zeros(1)
        self._x_mean = np.zeros(input_dim)
        self._x_std = np.ones(input_dim)
        self._y_mean = 0.0
        self._y_std = 1.0

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(x @ self.w1 + self.b1)
        out = hidden @ self.w2 + self.b2
        return hidden, out

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        epochs: int = 400,
        learning_rate: float = 1e-2,
    ) -> List[float]:
        """Train with full-batch Adam; returns the per-epoch MSE losses."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float).reshape(-1, 1)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("features must be 2D and aligned with targets")
        self._x_mean, self._x_std = x.mean(axis=0), x.std(axis=0) + 1e-9
        self._y_mean, self._y_std = float(y.mean()), float(y.std() + 1e-9)
        xn = (x - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        params = [self.w1, self.b1, self.w2, self.b2]
        moments = [np.zeros_like(p) for p in params]
        velocities = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        losses: List[float] = []
        for epoch in range(1, epochs + 1):
            hidden, out = self._forward(xn)
            err = out - yn
            loss = float(np.mean(err ** 2))
            losses.append(loss)
            grad_out = 2.0 * err / len(xn)
            grad_w2 = hidden.T @ grad_out
            grad_b2 = grad_out.sum(axis=0)
            grad_hidden = (grad_out @ self.w2.T) * (1.0 - hidden ** 2)
            grad_w1 = xn.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            grads = [grad_w1, grad_b1, grad_w2, grad_b2]
            for i, (param, grad) in enumerate(zip(params, grads)):
                moments[i] = beta1 * moments[i] + (1 - beta1) * grad
                velocities[i] = beta2 * velocities[i] + (1 - beta2) * grad ** 2
                m_hat = moments[i] / (1 - beta1 ** epoch)
                v_hat = velocities[i] / (1 - beta2 ** epoch)
                param -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        return losses

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        xn = (x - self._x_mean) / self._x_std
        _, out = self._forward(xn)
        return (out * self._y_std + self._y_mean).ravel()


@dataclass(frozen=True)
class PredictorAccuracy:
    """Mean relative error of the DNN and the naive analytical model on held-out data."""

    dnn_error: float
    analytical_error: float


class DnnOperatorPredictor:
    """Latency/memory predictor combining the analytical model with a learned correction.

    The perturbation model (``_ground_truth``) adds the effects the paper attributes to
    real hardware: dimension quantisation to the PE-array tile, an SRAM-spill penalty
    when the working set exceeds core SRAM, and DMA alignment padding of small transfers.
    """

    _KIND_IDS = {kind: i for i, kind in enumerate(OperatorKind)}

    def __init__(self, die: DieConfig, seed: int = 0) -> None:
        self.die = die
        self.analytical = AnalyticalPredictor(die)
        self._latency_model = MlpRegressor(input_dim=7, seed=seed)
        self._memory_model = MlpRegressor(input_dim=7, seed=seed + 1)
        self._trained = False
        self._seed = seed

    # ------------------------------------------------------------------ ground truth
    def _ground_truth(self, op: Operator) -> Tuple[float, float]:
        """Synthetic "measured" latency and memory (analytical + hardware effects).

        The perturbations are deliberately smooth functions of the operator's shape
        features (log FLOPs, working set vs SRAM): real alignment and multi-level-memory
        effects vary systematically with operator size, which is what lets a learned
        model capture them while the naive analytical model keeps a systematic error.
        """
        estimate = self.analytical.estimate(op)
        log_flops = math.log10(op.flops + 1.0)
        # Tile quantisation / pipeline ramp-up: small operators waste a larger share of
        # the PE array, large operators amortise it; varies smoothly with log-FLOPs.
        misalignment = 1.0 + 0.25 / (1.0 + math.exp(log_flops - 11.0))
        # SRAM spill: operators whose working set exceeds the core SRAM pay extra traffic.
        spill = 1.0
        working_set = op.checkpoint_bytes + op.weight_bytes
        if working_set > self.die.compute.sram_bytes:
            spill = 1.0 + 0.10 * math.log10(working_set / self.die.compute.sram_bytes + 1.0)
        # Bandwidth-bound operators additionally see DRAM row-activation inefficiency.
        bandwidth_penalty = 1.12 if estimate.is_memory_bound else 1.0
        latency = estimate.latency * misalignment * spill * bandwidth_penalty
        # DMA alignment pads small activations to the transfer granule (512 B per core).
        granule = 512.0 * self.die.compute.num_cores
        padded = math.ceil(max(op.checkpoint_bytes, 1.0) / granule) * granule
        memory = max(op.checkpoint_bytes, 0.7 * padded) * (1.0 + 0.05 * (misalignment - 1.0))
        return latency, memory

    def _features(self, op: Operator) -> List[float]:
        return [
            math.log10(op.flops + 1.0),
            math.log10(op.weight_bytes + 1.0),
            math.log10(op.checkpoint_bytes + 1.0),
            math.log10(op.output_bytes + 1.0),
            float(self._KIND_IDS[op.kind]),
            math.log10(self.die.flops_fp16),
            math.log10(self.die.dram_bandwidth + 1.0),
        ]

    # ------------------------------------------------------------------ training
    def train(self, operators: Sequence[Operator], epochs: int = 400) -> PredictorAccuracy:
        """Fit the MLPs on the operator sample and report held-out accuracy."""
        if len(operators) < 8:
            raise ValueError("need at least 8 operators to train the predictor")
        rng = np.random.default_rng(self._seed)
        shuffled = list(operators)
        rng.shuffle(shuffled)
        operators = shuffled
        features = np.array([self._features(op) for op in operators])
        truth = np.array([self._ground_truth(op) for op in operators])
        log_latency = np.log10(truth[:, 0] + 1e-12)
        log_memory = np.log10(truth[:, 1] + 1.0)

        split = max(4, int(0.8 * len(operators)))
        self._latency_model.fit(features[:split], log_latency[:split], epochs=epochs)
        self._memory_model.fit(features[:split], log_memory[:split], epochs=epochs)
        self._trained = True

        held_ops = operators[split:] or operators[:split]
        held_feats = np.array([self._features(op) for op in held_ops])
        held_truth = np.array([self._ground_truth(op) for op in held_ops])
        dnn_latency = 10.0 ** self._latency_model.predict(held_feats)
        analytical_latency = np.array([self.analytical.latency(op) for op in held_ops])
        dnn_err = float(np.mean(np.abs(dnn_latency - held_truth[:, 0]) / held_truth[:, 0]))
        ana_err = float(
            np.mean(np.abs(analytical_latency - held_truth[:, 0]) / held_truth[:, 0])
        )
        return PredictorAccuracy(dnn_error=dnn_err, analytical_error=ana_err)

    # ------------------------------------------------------------------ prediction
    def latency(self, op: Operator) -> float:
        if not self._trained:
            return self.analytical.latency(op)
        feats = np.array([self._features(op)])
        return float(10.0 ** self._latency_model.predict(feats)[0])

    def memory(self, op: Operator) -> float:
        if not self._trained:
            return self.analytical.memory(op)
        feats = np.array([self._features(op)])
        return float(10.0 ** self._memory_model.predict(feats)[0] - 1.0)
