"""Analytical operator latency/memory model.

For every operator the latency is the larger of its compute time and its external
memory-access time (a roofline), plus a fixed launch overhead; the memory footprint is
its checkpoint size.  GEMM operators choose the hybrid dataflow with the lowest EMA
(Fig. 14); bandwidth-bound operators are limited by DRAM bandwidth.

The analytical model deliberately ignores alignment / tiling quantisation and multi-level
memory effects; the paper (Fig. 10b) shows that those effects cost it ~15–20% accuracy
compared to a learned predictor.  :mod:`repro.predictor.dnn` adds exactly those effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

try:  # numpy-optional: the batch path falls back to plain loops without it
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

from repro.hardware.template import DieConfig
from repro.memsys.dataflow import select_dataflow
from repro.memsys.sram import SramTiler
from repro.units import FP16_BYTES
from repro.workloads.operators import Operator, OperatorKind

#: Fraction of peak FLOPs each operator kind sustains on the PE array / vector unit.
KIND_EFFICIENCY = {
    OperatorKind.GEMM: 0.80,
    OperatorKind.FLASH_ATTENTION: 0.65,
    OperatorKind.EMBEDDING: 0.55,
    OperatorKind.ROUTER: 0.50,
    OperatorKind.SCAN: 0.35,
    OperatorKind.CONV: 0.70,
    OperatorKind.NORM: 0.10,
    OperatorKind.ACTIVATION: 0.10,
    OperatorKind.ELEMENTWISE: 0.10,
}

#: Per-operator launch overhead (scheduling, DMA programming).
LAUNCH_OVERHEAD = 2e-6


@dataclass(frozen=True)
class OperatorEstimate:
    """Predicted execution characteristics of one operator on one die."""

    latency: float
    memory_bytes: float
    compute_time: float
    memory_time: float
    ema_bytes: float

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_time > self.compute_time


class AnalyticalPredictor:
    """Roofline-style analytical predictor for operator latency and memory footprint."""

    def __init__(self, die: DieConfig) -> None:
        self.die = die
        compute = die.compute
        self._tiler = SramTiler(compute.core.sram_bytes)
        # Effective blocking tile: with the aggregate die SRAM holding one block of the
        # input, weight and output operands, the classic blocked-GEMM result gives a
        # reuse distance of sqrt(SRAM / 3 operands); DRAM traffic is then governed by
        # this block size, not the raw PE-array dimensions.
        block = max(
            compute.core_rows * 8,
            int((compute.sram_bytes / (3.0 * FP16_BYTES)) ** 0.5),
        )
        self._array = (block, block)

    # ------------------------------------------------------------------ helpers
    def _gemm_shape(self, op: Operator) -> Tuple[int, int, int]:
        """Recover an (S, H, K) GEMM shape consistent with the operator's FLOPs/weights."""
        weight_elems = max(1.0, op.weight_bytes / FP16_BYTES)
        # flops = 2 * S * H * K and weight = H * K  →  S = flops / (2 * weight)
        s = max(1, int(op.flops / (2.0 * weight_elems)))
        out_elems = max(1.0, op.output_bytes / FP16_BYTES)
        h = max(1, int(out_elems / s))
        k = max(1, int(weight_elems / h))
        return s, h, k

    def _ema_bytes(self, op: Operator) -> float:
        if op.kind in (OperatorKind.GEMM, OperatorKind.EMBEDDING, OperatorKind.ROUTER):
            s, h, k = self._gemm_shape(op)
            _, ema_elems = select_dataflow(s, h, k, *self._array)
            # A GEMM can never move less than one pass over its operands and result.
            lower_bound = float(s * k + k * h + s * h)
            return max(ema_elems, lower_bound) * FP16_BYTES
        if op.kind is OperatorKind.FLASH_ATTENTION:
            # FlashAttention streams Q, K, V once and writes the output once.
            return 2.0 * (op.checkpoint_bytes + op.output_bytes)
        # Bandwidth-bound elementwise operators read and write the activation once.
        return 2.0 * max(op.checkpoint_bytes, op.output_bytes)

    # ------------------------------------------------------------------ prediction
    def estimate(self, op: Operator) -> OperatorEstimate:
        """Latency and memory footprint of ``op`` on this die."""
        efficiency = KIND_EFFICIENCY.get(op.kind, 0.5)
        compute_time = op.flops / (self.die.flops_fp16 * efficiency) if op.flops else 0.0
        ema = self._ema_bytes(op)
        memory_time = ema / self.die.dram_bandwidth if self.die.dram_bandwidth else 0.0
        latency = max(compute_time, memory_time) + LAUNCH_OVERHEAD
        return OperatorEstimate(
            latency=latency,
            memory_bytes=op.checkpoint_bytes,
            compute_time=compute_time,
            memory_time=memory_time,
            ema_bytes=ema,
        )

    def estimate_batch(self, ops: Sequence[Operator]) -> List[OperatorEstimate]:
        """Batch roofline over a whole operator graph (struct-of-arrays, numpy-optional).

        The EMA term still walks each operator (the hybrid-dataflow argmin is per
        shape), but the roofline arithmetic — compute time, memory time, the max and
        the launch overhead — runs once over packed arrays.  Results are bit-identical
        to :meth:`estimate`: the element-wise float64 operations are the same IEEE
        operations the scalar path performs, in the same order.
        """
        if _np is None or len(ops) < 2:
            return [self.estimate(op) for op in ops]
        peak = self.die.flops_fp16
        bandwidth = self.die.dram_bandwidth
        flops = _np.array([op.flops for op in ops], dtype=_np.float64)
        efficiency = _np.array(
            [KIND_EFFICIENCY.get(op.kind, 0.5) for op in ops], dtype=_np.float64
        )
        ema = _np.array([self._ema_bytes(op) for op in ops], dtype=_np.float64)
        compute_time = _np.where(flops != 0.0, flops / (peak * efficiency), 0.0)
        if bandwidth:
            memory_time = ema / bandwidth
        else:
            memory_time = _np.zeros_like(ema)
        latency = _np.maximum(compute_time, memory_time) + LAUNCH_OVERHEAD
        return [
            OperatorEstimate(
                latency=float(latency[i]),
                memory_bytes=op.checkpoint_bytes,
                compute_time=float(compute_time[i]),
                memory_time=float(memory_time[i]),
                ema_bytes=float(ema[i]),
            )
            for i, op in enumerate(ops)
        ]

    def latency(self, op: Operator) -> float:
        return self.estimate(op).latency

    def memory(self, op: Operator) -> float:
        return self.estimate(op).memory_bytes
