"""Operator latency/memory predictors: analytical, DNN-based and the offline lookup table."""

from repro.predictor.analytical import AnalyticalPredictor, OperatorEstimate
from repro.predictor.dnn import MlpRegressor, DnnOperatorPredictor
from repro.predictor.lookup import OperatorProfileTable

__all__ = [
    "AnalyticalPredictor",
    "OperatorEstimate",
    "MlpRegressor",
    "DnnOperatorPredictor",
    "OperatorProfileTable",
]
