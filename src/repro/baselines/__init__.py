"""Baseline systems and strategies: GPU clusters, Megatron-on-wafer, Cerebras and the
prior DSE frameworks of Fig. 20."""

from repro.baselines.gpu_system import GpuEvaluator, megatron_gpu_result
from repro.baselines.wafer_strategies import megatron_wafer_plan, cerebras_wafer_result
from repro.baselines.dse_frameworks import DSE_FRAMEWORKS, evaluate_dse_framework

__all__ = [
    "GpuEvaluator",
    "megatron_gpu_result",
    "megatron_wafer_plan",
    "cerebras_wafer_result",
    "DSE_FRAMEWORKS",
    "evaluate_dse_framework",
]
