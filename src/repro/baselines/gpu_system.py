"""GPU-cluster baseline: Megatron-LM on DGX / NVL72 systems (MG-GPU in the paper).

The GPU system differs from the wafer in two ways that matter for the cost model: the
intra-node interconnect is an all-to-all NVSwitch fabric (every collective sees the full
NVLink bandwidth regardless of group shape), and scaling beyond a node drops to the much
slower inter-node fabric.  Compute and HBM are priced with the same roofline predictor as
the wafer by wrapping the GPU in a synthetic :class:`DieConfig`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.evaluator import EvaluationResult
from repro.hardware.configs import GpuSystemConfig, dgx_b300_node
from repro.hardware.template import ComputeDieConfig, CoreConfig, DieConfig, DramChipletConfig
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveModel
from repro.parallelism.megatron import megatron_parallelism
from repro.parallelism.pipeline import PipelineCostInputs, simulate_1f1b
from repro.parallelism.strategies import ParallelismConfig
from repro.predictor.analytical import AnalyticalPredictor
from repro.predictor.lookup import OperatorProfileTable
from repro.units import FP16_BYTES
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.transformer import build_layer_graph, embedding_operator
from repro.workloads.workload import TrainingWorkload


def _gpu_as_die(system: GpuSystemConfig) -> DieConfig:
    """Wrap one GPU in the die abstraction so the operator predictor can price it."""
    gpu = system.gpu
    compute = ComputeDieConfig(
        core_rows=16,
        core_cols=16,
        core=CoreConfig(flops_fp16=gpu.flops_fp16 / 256.0, sram_bytes=50 * 1024 * 1024 / 256.0),
        width_mm=26.0,
        height_mm=30.0,
        edge_io_bandwidth=gpu.nvlink_bandwidth,
    )
    chiplet = DramChipletConfig(
        capacity_bytes=gpu.hbm_capacity / 8.0,
        bandwidth=gpu.hbm_bandwidth / 8.0,
        interface_bandwidth=gpu.hbm_bandwidth / 8.0,
    )
    return DieConfig(
        compute=compute,
        dram_chiplet=chiplet,
        num_dram_chiplets=8,
        d2d_bandwidth=gpu.nvlink_bandwidth,
        d2d_latency=gpu.nvlink_latency,
    )


class GpuEvaluator:
    """Prices Megatron-style training plans on a GPU cluster."""

    def __init__(self, system: Optional[GpuSystemConfig] = None) -> None:
        self.system = system or dgx_b300_node()
        self._die = _gpu_as_die(self.system)
        self.profile = OperatorProfileTable(AnalyticalPredictor(self._die), self._die)

    # ------------------------------------------------------------------ collectives
    def _tp_collective(self, tp: int) -> CollectiveModel:
        gpu = self.system.gpu
        return CollectiveModel(AlphaBetaLink(gpu.nvlink_bandwidth, gpu.nvlink_latency), tp)

    def _dp_collective(self, dp: int, spans_nodes: bool) -> CollectiveModel:
        if spans_nodes:
            link = AlphaBetaLink(self.system.inter_node_bandwidth, self.system.inter_node_latency)
        else:
            gpu = self.system.gpu
            link = AlphaBetaLink(gpu.nvlink_bandwidth, gpu.nvlink_latency)
        return CollectiveModel(link, dp)

    # ------------------------------------------------------------------ evaluation
    def evaluate(
        self,
        workload: TrainingWorkload,
        parallelism: Optional[ParallelismConfig] = None,
    ) -> EvaluationResult:
        """Iteration time and throughput of Megatron on the GPU system."""
        if parallelism is None:
            parallelism = megatron_parallelism(
                workload.model,
                self.system.num_gpus,
                self.system.gpu.hbm_capacity,
                global_batch_size=workload.global_batch_size,
            )
        tp, pp, dp = parallelism.tp, parallelism.pp, parallelism.dp
        if parallelism.world_size > self.system.num_gpus:
            raise ValueError("parallelism exceeds the number of GPUs in the system")
        num_microbatches = workload.num_microbatches(dp)

        memory = TrainingMemoryModel(workload.model)
        layers = memory.layers_per_stage(pp)
        operators = build_layer_graph(workload.model, workload.micro_batch_size, workload.seq_len)

        # Out-of-memory check with full activation checkpointing; Megatron falls back to
        # full recomputation (selective recompute of everything recomputable) when needed.
        recompute_needed = any(
            memory.stage_breakdown(
                s, pp, tp, workload.micro_batch_size, workload.seq_len, num_microbatches
            ).total_bytes
            > self.system.gpu.hbm_capacity
            for s in range(pp)
        )
        recompute_fraction = 0.85 if recompute_needed else 0.0
        if recompute_needed:
            still_oom = any(
                memory.stage_breakdown(
                    s, pp, tp, workload.micro_batch_size, workload.seq_len,
                    num_microbatches, recompute_fraction=recompute_fraction,
                ).total_bytes
                > self.system.gpu.hbm_capacity
                for s in range(pp)
            )
            if still_oom:
                return EvaluationResult.out_of_memory(parallelism.label(), self.system.name)

        collective = self._tp_collective(tp)
        forward: List[float] = []
        backward: List[float] = []
        useful_flops = 0.0
        recompute_flops = 0.0
        tp_comm_total = 0.0
        for stage in range(pp):
            fwd_compute = 0.0
            comm = 0.0
            for op in operators:
                sharded = op.sharded(tp)
                fwd_compute += self.profile.latency(sharded)
                if op.tp_allreduce_bytes > 0 and tp > 1:
                    comm += collective.ring_all_reduce(op.tp_allreduce_bytes, bidirectional=True)
            fwd = layers[stage] * (fwd_compute + comm)
            bwd = layers[stage] * (2.0 * fwd_compute + comm)
            if recompute_needed:
                recomputed = layers[stage] * fwd_compute * recompute_fraction
                bwd += recomputed
                recompute_flops += (
                    recompute_fraction
                    * layers[stage]
                    * sum(op.flops for op in operators)
                    * num_microbatches
                )
            if stage in (0, pp - 1):
                embed = embedding_operator(
                    workload.model, workload.micro_batch_size, workload.seq_len
                ).sharded(tp)
                fwd += self.profile.latency(embed)
                bwd += 2.0 * self.profile.latency(embed)
            forward.append(fwd)
            backward.append(bwd)
            tp_comm_total += layers[stage] * comm * 3.0 * num_microbatches
            useful_flops += (
                3.0 * layers[stage] * sum(op.flops for op in operators) * num_microbatches
            )

        activation_bytes = (
            workload.micro_batch_size * workload.seq_len * workload.model.hidden_size * FP16_BYTES
        )
        boundary = [
            self.system.gpu.nvlink_latency + activation_bytes / self.system.gpu.nvlink_bandwidth
        ] * max(0, pp - 1)

        pipeline = simulate_1f1b(
            PipelineCostInputs(
                forward=forward,
                backward=backward,
                comm=boundary,
                num_microbatches=num_microbatches,
            )
        )
        iteration_time = pipeline.iteration_time

        if dp > 1:
            spans_nodes = parallelism.world_size > self.system.gpus_per_node
            grad_bytes = workload.model.num_parameters * FP16_BYTES / (tp * pp)
            iteration_time += self._dp_collective(dp, spans_nodes).ring_all_reduce(
                grad_bytes, bidirectional=True
            )

        compute_util = 0.0
        if iteration_time > 0:
            compute_util = (useful_flops + recompute_flops) / (
                self.system.gpu.flops_fp16 * parallelism.world_size * iteration_time
            )

        return EvaluationResult(
            iteration_time=iteration_time,
            useful_flops=useful_flops,
            recompute_flops=recompute_flops,
            oom=False,
            bubble_fraction=pipeline.bubble_fraction,
            tp_comm_time=tp_comm_total,
            pp_comm_time=sum(boundary) * num_microbatches,
            compute_utilization=min(1.0, compute_util),
            plan_label=parallelism.label(),
            system_label=self.system.name,
        )


def megatron_gpu_result(
    workload: TrainingWorkload, system: Optional[GpuSystemConfig] = None
) -> EvaluationResult:
    """Convenience wrapper: Megatron's own parallelism choice on the GPU system."""
    evaluator = GpuEvaluator(system)
    return evaluator.evaluate(workload)
