"""Prior design-space-exploration frameworks as wafer training strategies (Fig. 20).

The paper reproduces seven earlier DSE frameworks on the WSC and shows where each one's
blind spot costs performance.  We model every framework as a strategy generator whose
*output plan* has exactly the limitation the paper describes, and evaluate all of them
with the same evaluator so the comparison isolates the strategy quality:

========= ==============================================================================
Timeloop   die-level mapping only: no model parallelism awareness, the model is simply
           spread pipeline-only with no recomputation or placement reasoning.
DFModel    explores multi-dimensional parallelism but assumes a flat interconnect and
           ignores DRAM capacity (no recomputation), so memory-tight points are lost.
Calculon   DFModel plus memory-saving techniques: uniform full recomputation when the
           plan does not fit — better, but the recompute overhead is unmanaged.
Hecaton    chiplet-scale, 2D-mesh aware communication, but optimises DRAM *accesses*
           rather than capacity, and its 2D TP adds communication volume on the mesh.
Gemini     like Hecaton with LP-style mapping: mesh-aware shapes, naive recomputation.
PD         topology/collective co-design (TACOS-style collectives) but no DRAM-capacity
           management, so it also falls back to naive recomputation.
WSC-LLM    area-aware wafer DSE for inference: good placement, no recomputation-aware
           optimisation (uniform recompute, no Sender/Helper balancing).
========= ==============================================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.central_scheduler import CentralScheduler
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.placement import PlacementOptimizer, serpentine_placement
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.hardware.template import WaferConfig
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.interconnect.topology import MeshTopology
from repro.parallelism.partition import best_mesh_shape, factor_shapes
from repro.parallelism.strategies import ParallelismConfig, enumerate_tp_pp
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.workload import TrainingWorkload


def _fits(wafer: WaferConfig, workload: TrainingWorkload, tp: int, pp: int,
          recompute_fraction: float) -> bool:
    memory = TrainingMemoryModel(workload.model)
    capacity = wafer.die.dram_capacity
    n = workload.num_microbatches(1)
    return all(
        memory.stage_breakdown(
            s, pp, tp, workload.micro_batch_size, workload.seq_len, n,
            recompute_fraction=recompute_fraction,
        ).total_bytes
        <= capacity
        for s in range(pp)
    )


def _naive_recompute(workload: TrainingWorkload, wafer: WaferConfig, tp: int, pp: int
                     ) -> Optional[RecomputeConfig]:
    """None if it fits, full recomputation if that fits, otherwise None (infeasible)."""
    operators = workload.layer_operators()
    if _fits(wafer, workload, tp, pp, 0.0):
        return RecomputeConfig.none(pp)
    if _fits(wafer, workload, tp, pp, 1.0):
        return RecomputeConfig.full(pp, operators)
    return None


def _evaluate_flat_interconnect_choice(
    wafer: WaferConfig, workload: TrainingWorkload, with_recompute: bool
) -> Tuple[Optional[TrainingPlan], Optional[EvaluationResult]]:
    """Pick (TP, PP) assuming a flat interconnect, then pay the real mesh cost.

    DFModel/Calculon-style: the candidate ranking uses a compute+volume-only model that
    cannot see the mesh, so it prefers large TP; the chosen plan is then priced on the
    actual wafer.
    """
    evaluator = Evaluator(wafer)
    best_score = None
    chosen: Optional[Tuple[int, int]] = None
    for tp, pp in enumerate_tp_pp(wafer.num_dies, workload.model.num_layers):
        if not with_recompute and not _fits(wafer, workload, tp, pp, 0.0):
            continue
        if with_recompute and _naive_recompute(workload, wafer, tp, pp) is None:
            continue
        # Flat-interconnect score: compute scales with 1/(tp*pp); communication volume is
        # assumed uniform, so the model favours the largest TP that fits.
        score = tp * 1.0 + pp * 0.1
        if best_score is None or score > best_score:
            best_score, chosen = score, (tp, pp)
    if chosen is None:
        return None, None
    tp, pp = chosen
    recompute = _naive_recompute(workload, wafer, tp, pp)
    if recompute is None:
        return None, None
    shape = min(
        (s for s in factor_shapes(tp) if s[0] <= wafer.dies_x and s[1] <= wafer.dies_y),
        key=lambda s: s[0],  # flat model has no shape preference; take a 1×tp strip
        default=None,
    )
    if shape is None:
        return None, None
    plan = TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=tp, pp=pp),
        tp_shape=shape,
        collective=CollectiveAlgorithm.RING,
        recompute=recompute,
        placement=serpentine_placement(wafer.dies_x, wafer.dies_y, shape, pp),
    )
    return plan, evaluator.evaluate(workload, plan)


def _timeloop(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    """Die-level mapping only: pipeline-only split, no recomputation management."""
    evaluator = Evaluator(wafer)
    pp = min(wafer.num_dies, workload.model.num_layers)
    recompute = _naive_recompute(workload, wafer, 1, pp)
    if recompute is None:
        return EvaluationResult.out_of_memory("timeloop", wafer.name)
    plan = TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=1, pp=pp),
        tp_shape=(1, 1),
        collective=CollectiveAlgorithm.RING,
        recompute=recompute,
        placement=serpentine_placement(wafer.dies_x, wafer.dies_y, (1, 1), pp),
    )
    return evaluator.evaluate(workload, plan)


def _dfmodel(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    _, result = _evaluate_flat_interconnect_choice(wafer, workload, with_recompute=False)
    if result is None:
        _, result = _evaluate_flat_interconnect_choice(wafer, workload, with_recompute=True)
    return result or EvaluationResult.out_of_memory("dfmodel", wafer.name)


def _calculon(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    _, result = _evaluate_flat_interconnect_choice(wafer, workload, with_recompute=True)
    return result or EvaluationResult.out_of_memory("calculon", wafer.name)


def _mesh_aware_naive_recompute(
    wafer: WaferConfig,
    workload: TrainingWorkload,
    collective: CollectiveAlgorithm,
    optimize_placement: bool,
) -> Optional[EvaluationResult]:
    """Mesh-aware (TP, PP) search, square TP shapes, but only naive recomputation."""
    evaluator = Evaluator(wafer)
    best: Optional[EvaluationResult] = None
    for tp, pp in enumerate_tp_pp(wafer.num_dies, workload.model.num_layers, max_tp=16):
        recompute = _naive_recompute(workload, wafer, tp, pp)
        if recompute is None:
            continue
        try:
            shape = best_mesh_shape(tp, wafer.dies_x, wafer.dies_y)
            placement = serpentine_placement(wafer.dies_x, wafer.dies_y, shape, pp)
        except ValueError:
            continue
        if optimize_placement:
            placement = PlacementOptimizer(MeshTopology.from_wafer(wafer)).optimize(
                shape, pp, ()
            )
        plan = TrainingPlan(
            parallelism=ParallelismConfig(dp=1, tp=tp, pp=pp),
            tp_shape=shape,
            collective=collective,
            recompute=recompute,
            placement=placement,
        )
        result = evaluator.evaluate(workload, plan)
        if result.oom:
            continue
        if best is None or result.throughput > best.throughput:
            best = result
    return best or EvaluationResult.out_of_memory("mesh-aware", wafer.name)


def _hecaton(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    # 2D TP on the mesh adds communication volume (the paper's critique).
    return _mesh_aware_naive_recompute(
        wafer, workload, CollectiveAlgorithm.TP_2D, optimize_placement=False
    )


def _gemini(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    return _mesh_aware_naive_recompute(
        wafer, workload, CollectiveAlgorithm.RING, optimize_placement=False
    )


def _pd(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    # Topology/collective co-design: TACOS-style collectives, still naive recomputation.
    return _mesh_aware_naive_recompute(
        wafer, workload, CollectiveAlgorithm.TACOS, optimize_placement=False
    )


def _wsc_llm(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    # Area-aware and placement-aware, but without recomputation-aware optimisation.
    return _mesh_aware_naive_recompute(
        wafer, workload, CollectiveAlgorithm.BIDIRECTIONAL_RING, optimize_placement=True
    )


def _watos(wafer: WaferConfig, workload: TrainingWorkload) -> Optional[EvaluationResult]:
    scheduler = CentralScheduler(wafer)
    best = scheduler.best(workload)
    return best.result if best else EvaluationResult.out_of_memory("watos", wafer.name)


DSE_FRAMEWORKS: Dict[str, Callable[[WaferConfig, TrainingWorkload], Optional[EvaluationResult]]] = {
    "timeloop": _timeloop,
    "dfmodel": _dfmodel,
    "calculon": _calculon,
    "hecaton": _hecaton,
    "gemini": _gemini,
    "pd": _pd,
    "wsc-llm": _wsc_llm,
    "watos": _watos,
}


def evaluate_dse_framework(
    name: str, wafer: WaferConfig, workload: TrainingWorkload
) -> EvaluationResult:
    """Evaluate one of the Fig. 20 frameworks by name."""
    try:
        strategy = DSE_FRAMEWORKS[name]
    except KeyError:
        known = ", ".join(sorted(DSE_FRAMEWORKS))
        raise KeyError(f"unknown DSE framework '{name}'; known: {known}") from None
    result = strategy(wafer, workload)
    if result is None:
        return EvaluationResult.out_of_memory(name, wafer.name)
    return result
