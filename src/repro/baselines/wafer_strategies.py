"""Baseline training strategies applied to the wafer (MG-wafer and Cerebras in Fig. 16).

*MG-wafer* takes Megatron's (TP, PP) recommendation, enumerates the physical shapes the
TP group could take on the mesh, places stages in the naive serpentine order, falls back
to naive uniform recomputation when memory does not fit, and keeps the best-performing
shape — exactly the procedure §V-C describes.

*Cerebras* applies the weight-streaming execution model of
:mod:`repro.parallelism.cerebras` to the wafer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.core.placement import serpentine_placement
from repro.hardware.template import WaferConfig
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.parallelism.cerebras import CerebrasWeightStreaming
from repro.parallelism.megatron import megatron_parallelism
from repro.parallelism.partition import factor_shapes
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.workload import TrainingWorkload


def _memory_feasible(
    wafer: WaferConfig,
    workload: TrainingWorkload,
    tp: int,
    pp: int,
    recompute_fraction: float,
) -> bool:
    memory = TrainingMemoryModel(workload.model)
    capacity = wafer.die.dram_capacity
    num_microbatches = workload.num_microbatches(1)
    return all(
        memory.stage_breakdown(
            s, pp, tp, workload.micro_batch_size, workload.seq_len,
            num_microbatches, recompute_fraction=recompute_fraction,
        ).total_bytes
        <= capacity
        for s in range(pp)
    )


def megatron_wafer_plan(
    wafer: WaferConfig, workload: TrainingWorkload
) -> Tuple[Optional[TrainingPlan], Optional[EvaluationResult]]:
    """Megatron's scheduling policy transplanted onto the wafer (MG-wafer).

    Returns the best (plan, result) over all physical TP shapes, or ``(None, None)``
    when no shape fits memory even with naive full recomputation.
    """
    parallelism = megatron_parallelism(
        workload.model,
        wafer.num_dies,
        wafer.die.dram_capacity,
        global_batch_size=workload.global_batch_size,
    )
    tp = parallelism.tp
    pp = max(1, min(wafer.num_dies // tp, workload.model.num_layers))
    evaluator = Evaluator(wafer)
    operators = workload.layer_operators()

    best_plan: Optional[TrainingPlan] = None
    best_result: Optional[EvaluationResult] = None
    for shape in factor_shapes(tp):
        if shape[0] > wafer.dies_x or shape[1] > wafer.dies_y:
            continue
        try:
            placement = serpentine_placement(wafer.dies_x, wafer.dies_y, shape, pp)
        except ValueError:
            continue
        # Megatron knows full and selective recomputation, but not the wafer-global
        # balancing — so the choice is naive: none if it fits, everything otherwise.
        if _memory_feasible(wafer, workload, tp, pp, 0.0):
            recompute = RecomputeConfig.none(pp)
        else:
            recompute = RecomputeConfig.full(pp, operators)
        plan = TrainingPlan(
            parallelism=ParallelismConfig(dp=1, tp=tp, pp=pp),
            tp_shape=shape,
            collective=CollectiveAlgorithm.RING,
            recompute=recompute,
            placement=placement,
        )
        result = evaluator.evaluate(workload, plan)
        if result.oom:
            continue
        if best_result is None or result.throughput > best_result.throughput:
            best_plan, best_result = plan, result
    return best_plan, best_result


def cerebras_wafer_result(
    wafer: WaferConfig, workload: TrainingWorkload
) -> EvaluationResult:
    """Cerebras weight-streaming execution on the wafer, as an :class:`EvaluationResult`."""
    streaming = CerebrasWeightStreaming(wafer)
    outcome = streaming.evaluate(workload)
    useful_flops = workload.iteration_flops()
    compute_util = 0.0
    if outcome.iteration_time > 0:
        compute_util = useful_flops / (wafer.total_flops * outcome.iteration_time)
    return EvaluationResult(
        iteration_time=outcome.iteration_time,
        useful_flops=useful_flops,
        recompute_flops=0.0,
        oom=False,
        tp_comm_time=outcome.weight_stream_time + outcome.gradient_reduce_time,
        compute_utilization=min(1.0, compute_util),
        plan_label="weight-streaming",
        system_label=wafer.name,
    )
